"""Admission-bounded, model-fair request queue with QoS lanes.

Requests wait in per-model FIFO lanes.  The scheduler drains one lane at
a time (so same-model requests coalesce into one batched SLS op) but the
lanes rotate round-robin, the host-side analogue of the NDP engine's
step-3a round-robin page feed: no model's traffic can starve another's.

Admission counts every live request — queued *and* dispatched — against
``max_inflight`` (the :class:`~repro.host.system.SystemConfig`
``max_inflight_requests`` knob); :meth:`release` frees a slot when a
request completes.  Arrivals beyond the limit are rejected rather than
buffered without bound, keeping tail latency finite under overload.

An optional :class:`~repro.serving.admission.AdmissionConfig` layers
three QoS policies on top (all default-off, so the seed behaviour is
unchanged):

* **per-model quotas** — a lane whose live count reached its quota
  rejects further arrivals (reason ``quota``) even while global slots
  remain, bounding how much of the server one tenant can occupy;
* **priority lanes** — lanes belong to priority classes; the scheduler
  serves the highest class with queued work and round-robins only
  *within* a class, so latency-critical models cut ahead of batch ones;
* **deadline-aware early drop** — :meth:`pop_batch` hands each request
  to an ``on_expired`` filter before batching it, letting the server
  shed already-doomed requests at dispatch time instead of wasting
  device time on them.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from .admission import REASON_CAPACITY, REASON_QUOTA, AdmissionConfig
from .request import InferenceRequest

__all__ = ["RequestQueue"]


class RequestQueue:
    """Bounded multi-lane FIFO: round-robin within a priority class,
    strict precedence across classes."""

    def __init__(
        self, max_inflight: int, admission: Optional[AdmissionConfig] = None
    ):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.max_inflight = max_inflight
        self.admission = admission or AdmissionConfig()
        self.inflight = 0          # admitted and not yet released
        self.inflight_by_model: Dict[str, int] = {}
        self._lanes: Dict[str, Deque[InferenceRequest]] = {}
        # priority class -> lanes with queued work, RR order.  With no
        # configured priorities everything lives in class 0 and the
        # behaviour is exactly the seed's single rotation.
        self._rotations: Dict[int, Deque[str]] = {}

    # ------------------------------------------------------------------
    def offer(self, request: InferenceRequest) -> bool:
        """Admit ``request`` if an in-flight slot (and its lane's quota)
        is free; ``False`` rejects, with ``request.drop_reason`` naming
        which limit fired."""
        if self.inflight >= self.max_inflight:
            request.drop_reason = REASON_CAPACITY
            return False
        quota = self.admission.quota_for(request.model)
        if (
            quota is not None
            and self.inflight_by_model.get(request.model, 0) >= quota
        ):
            request.drop_reason = REASON_QUOTA
            return False
        self.inflight += 1
        self.inflight_by_model[request.model] = (
            self.inflight_by_model.get(request.model, 0) + 1
        )
        lane = self._lanes.get(request.model)
        if lane is None:
            lane = self._lanes[request.model] = deque()
        if not lane:
            self._rotation_for(request.model).append(request.model)
        lane.append(request)
        return True

    def _rotation_for(self, model: str) -> Deque[str]:
        priority = self.admission.priority_for(model)
        rotation = self._rotations.get(priority)
        if rotation is None:
            rotation = self._rotations[priority] = deque()
        return rotation

    # ------------------------------------------------------------------
    def next_model(
        self, ready: Optional[Callable[[str], bool]] = None
    ) -> Optional[str]:
        """The next lane with queued work that ``ready`` accepts.

        Priority classes are scanned highest first; within a class the
        scan is round-robin.  The returned lane keeps its rotation
        position until popped; lanes whose ``ready`` check fails (e.g.
        no free worker) are skipped this round without losing their turn.
        """
        for priority in sorted(self._rotations, reverse=True):
            rotation = self._rotations[priority]
            for i in range(len(rotation)):
                model = rotation[i]
                if ready is None or ready(model):
                    return model
        return None

    def pop_batch(
        self,
        model: str,
        limit: int,
        on_expired: Optional[Callable[[InferenceRequest], bool]] = None,
    ) -> List[InferenceRequest]:
        """Dequeue up to ``limit`` requests from ``model``'s lane (FIFO).

        ``on_expired`` (when given) inspects each candidate first; a
        ``True`` return means the callback consumed the request (the
        server dropped it and released its slot) and it is excluded from
        the batch — deadline-aware early drop happens here, at the last
        moment before device time would be spent.

        Rotates the lane to the back of its priority class's round-robin
        order; drops it from the rotation when emptied.
        """
        lane = self._lanes.get(model)
        if not lane:
            return []
        out: List[InferenceRequest] = []
        while lane and len(out) < limit:
            request = lane.popleft()
            if on_expired is not None and on_expired(request):
                continue
            out.append(request)
        rotation = self._rotation_for(model)
        try:
            rotation.remove(model)
        except ValueError:
            pass
        if lane:
            rotation.append(model)
        return out

    def remove(self, request: InferenceRequest) -> bool:
        """Remove one *queued* request from its lane (timeout/hedge
        cancellation).

        The request stays admitted — as with :meth:`drain_queued`, the
        caller owns the terminal transition and the :meth:`release`.
        Returns ``False`` when the request is not queued here (already
        popped for dispatch, or never offered).
        """
        lane = self._lanes.get(request.model)
        if not lane:
            return False
        try:
            lane.remove(request)
        except ValueError:
            return False
        if not lane:
            rotation = self._rotation_for(request.model)
            try:
                rotation.remove(request.model)
            except ValueError:
                pass
        return True

    def drain_queued(self) -> List[InferenceRequest]:
        """Remove and return every queued (undispatched) request, lane by
        lane in lane-creation order (deterministic).

        The requests stay admitted — the caller owns their terminal
        transition (drop + :meth:`release` per request), the way
        :meth:`~repro.serving.server.InferenceServer.shed_queued` sheds a
        failed cluster host's backlog.  Lanes and rotations end empty.
        """
        out: List[InferenceRequest] = []
        for lane in self._lanes.values():
            out.extend(lane)
            lane.clear()
        for rotation in self._rotations.values():
            rotation.clear()
        return out

    def release(self, model: Optional[str] = None) -> None:
        """Return one admission slot (a request completed or was dropped).

        ``model`` keeps the per-lane quota accounting exact; the server
        always passes it.  The bare form is kept for direct queue users
        *without* quotas — with quotas configured it would silently
        leave the lane's live count inflated (permanently starving it),
        so it raises instead.
        """
        if self.inflight <= 0:
            raise RuntimeError("release without a matching offer")
        if model is None:
            if self.admission.quota_by_model:
                raise RuntimeError(
                    "release() needs the request's model when per-model "
                    "quotas are configured"
                )
            self.inflight -= 1
            return
        live = self.inflight_by_model.get(model, 0)
        if live <= 0:
            raise RuntimeError(f"release for idle model {model!r}")
        self.inflight -= 1
        self.inflight_by_model[model] = live - 1

    # ------------------------------------------------------------------
    @property
    def queued(self) -> int:
        return sum(len(lane) for lane in self._lanes.values())

    def queued_for(self, model: str) -> int:
        return len(self._lanes.get(model, ()))

    def __len__(self) -> int:
        return self.queued

    def __repr__(self) -> str:
        lanes = {m: len(q) for m, q in self._lanes.items() if q}
        return f"RequestQueue(inflight={self.inflight}, queued={lanes})"
