"""Admission-bounded, model-fair request queue.

Requests wait in per-model FIFO lanes.  The scheduler drains one lane at
a time (so same-model requests coalesce into one batched SLS op) but the
lanes rotate round-robin, the host-side analogue of the NDP engine's
step-3a round-robin page feed: no model's traffic can starve another's.

Admission counts every live request — queued *and* dispatched — against
``max_inflight`` (the :class:`~repro.host.system.SystemConfig`
``max_inflight_requests`` knob); :meth:`release` frees a slot when a
request completes.  Arrivals beyond the limit are rejected rather than
buffered without bound, keeping tail latency finite under overload.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from .request import InferenceRequest

__all__ = ["RequestQueue"]


class RequestQueue:
    """Bounded multi-lane FIFO with round-robin fairness across models."""

    def __init__(self, max_inflight: int):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.max_inflight = max_inflight
        self.inflight = 0          # admitted and not yet released
        self._lanes: Dict[str, Deque[InferenceRequest]] = {}
        self._rotation: Deque[str] = deque()  # lanes with queued work, RR order

    # ------------------------------------------------------------------
    def offer(self, request: InferenceRequest) -> bool:
        """Admit ``request`` if an in-flight slot is free; False rejects."""
        if self.inflight >= self.max_inflight:
            return False
        self.inflight += 1
        lane = self._lanes.get(request.model)
        if lane is None:
            lane = self._lanes[request.model] = deque()
        if not lane:
            self._rotation.append(request.model)
        lane.append(request)
        return True

    # ------------------------------------------------------------------
    def next_model(
        self, ready: Optional[Callable[[str], bool]] = None
    ) -> Optional[str]:
        """The next lane (round-robin) with queued work that ``ready`` accepts.

        The returned lane keeps its rotation position until popped; lanes
        whose ``ready`` check fails (e.g. no free worker) are skipped this
        round without losing their turn.
        """
        for i in range(len(self._rotation)):
            model = self._rotation[i]
            if ready is None or ready(model):
                return model
        return None

    def pop_batch(self, model: str, limit: int) -> List[InferenceRequest]:
        """Dequeue up to ``limit`` requests from ``model``'s lane (FIFO).

        Rotates the lane to the back of the round-robin order; drops it
        from the rotation when emptied.
        """
        lane = self._lanes.get(model)
        if not lane:
            return []
        out: List[InferenceRequest] = []
        while lane and len(out) < limit:
            out.append(lane.popleft())
        try:
            self._rotation.remove(model)
        except ValueError:
            pass
        if lane:
            self._rotation.append(model)
        return out

    def release(self) -> None:
        """Return one admission slot (a request completed)."""
        if self.inflight <= 0:
            raise RuntimeError("release without a matching offer")
        self.inflight -= 1

    # ------------------------------------------------------------------
    @property
    def queued(self) -> int:
        return sum(len(lane) for lane in self._lanes.values())

    def queued_for(self, model: str) -> int:
        return len(self._lanes.get(model, ()))

    def __len__(self) -> int:
        return self.queued

    def __repr__(self) -> str:
        lanes = {m: len(q) for m, q in self._lanes.items() if q}
        return f"RequestQueue(inflight={self.inflight}, queued={lanes})"
