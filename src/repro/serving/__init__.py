"""Concurrent multi-request serving layer (the ROADMAP's scaling spine).

RecSSD's benefit shows up under concurrent, batched, latency-bounded
load; this package provides the serving front-end that creates that
load shape against the simulated stack:

* :class:`~repro.serving.request.InferenceRequest` — one user request
  (model name + batch) with lifecycle timestamps and an optional SLO
  deadline.
* :class:`~repro.serving.queue.RequestQueue` — admission-bounded
  per-model FIFO lanes with round-robin fairness; an
  :class:`~repro.serving.admission.AdmissionConfig` adds QoS policies
  (deadline-aware early drop, per-model quotas, priority lanes).
* :class:`~repro.serving.scheduler.BatchScheduler` — coalesces queued
  requests into batched SLS operations and keeps several outstanding per
  worker, across one or many attached SSDs.
* :mod:`repro.serving.sharding` — cross-SSD placement policies
  (:class:`~repro.serving.sharding.ReplicatePolicy`,
  :class:`~repro.serving.sharding.TableShardPolicy`,
  :class:`~repro.serving.sharding.RowShardPolicy`) and the
  scatter-gather stage that splits one coalesced batch across the
  devices owning its table pieces and merges partial sums host-side.
* :mod:`repro.serving.hostpool` — the host resource model: a bounded
  dense-stage NN worker pool and a bounded host SLS worker pool
  (per-table DRAM gathers and NDP host split/merge hold workers instead
  of overlapping for free), each with queueing, wait-time breakdowns
  and utilization gauges.  Defaults are bit-identical to the unbounded
  seed behaviour.
* :class:`~repro.serving.stats.ServingStats` — per-request latency
  percentiles (p50/p95/p99), throughput, goodput (completions within
  deadline), per-lane, per-shard and host-pool work breakdowns.
* :class:`~repro.serving.server.InferenceServer` — ties it together;
  :func:`~repro.serving.server.run_offered_load` drives open-loop
  Poisson experiments (a thin front-end over :mod:`repro.workload`,
  which adds closed-loop clients, trace replay and declarative
  multi-tenant scenarios).

See ``docs/SERVING.md`` for the request lifecycle walkthrough and the
"Workloads & QoS" guide, ``examples/serving_demo.py`` /
``examples/workload_qos_demo.py`` for runnable tours, and
``benchmarks/bench_serving_throughput.py`` /
``benchmarks/bench_sharding.py`` / ``benchmarks/bench_qos.py`` for the
load benchmarks.
"""

from .admission import (
    REASON_CAPACITY,
    REASON_DEADLINE,
    REASON_QUOTA,
    AdmissionConfig,
)
from .hostpool import (
    DenseServiceModel,
    DenseWorkerPool,
    HostResourceModel,
    HostSlsPool,
)
from .queue import RequestQueue
from .request import InferenceRequest, RequestState
from .scheduler import BatchScheduler, ModelWorker, SchedulerConfig
from .server import InferenceServer, ServingConfig, run_offered_load
from .sharding import (
    LookupRowMapping,
    ModuloRowMapping,
    ReplicatePolicy,
    RowShardPolicy,
    ShardedEmbeddingStage,
    ShardingPolicy,
    ShardPlan,
    TablePlacement,
    TableShardPolicy,
)
from .stats import ServingStats
from .updates import EmbeddingUpdateEngine, age_device, make_model_updatable

__all__ = [
    "EmbeddingUpdateEngine",
    "age_device",
    "make_model_updatable",
    "AdmissionConfig",
    "REASON_CAPACITY",
    "REASON_DEADLINE",
    "REASON_QUOTA",
    "InferenceRequest",
    "RequestState",
    "RequestQueue",
    "BatchScheduler",
    "ModelWorker",
    "SchedulerConfig",
    "ServingStats",
    "InferenceServer",
    "ServingConfig",
    "run_offered_load",
    "ShardingPolicy",
    "ReplicatePolicy",
    "TableShardPolicy",
    "RowShardPolicy",
    "ShardPlan",
    "TablePlacement",
    "ModuloRowMapping",
    "LookupRowMapping",
    "ShardedEmbeddingStage",
    "DenseServiceModel",
    "DenseWorkerPool",
    "HostResourceModel",
    "HostSlsPool",
]
