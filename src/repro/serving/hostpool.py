"""Host resource model: bounded dense-stage NN workers and host SLS workers.

The seed serving layer models the host side of the pipeline with two
implicit, free resources, both of which flatter DRAM exactly where
RecNMP (Ke et al.) and the paper's Section 2 say host memory bandwidth
and CPU contention bite:

* **Host SLS workers.**  Per-table DRAM gathers and the host-side NDP
  split/merge all overlap for no cost — the
  :class:`~repro.embedding.stage.EmbeddingStage` launches every table's
  SLS op concurrently (the seed's "pool of SLS workers" abstraction,
  with the pool implicitly infinite).  Under heavy serving concurrency a
  real host has a fixed complement of SLS threads; once they are all
  busy, further per-table gathers *queue* instead of overlapping.
* **Dense-stage NN workers.**  The dense tower ran on a single
  serialized host timeline (``_dense_busy_until`` in the server) with no
  queueing visibility: no wait-time breakdown, no utilization, no way to
  study how much embedding work overlaps the dense stage when the pool
  is widened.

This module makes both resources explicit and bounded:

* :class:`HostSlsPool` — a bounded pool of host SLS worker threads.
  Each in-flight per-table SLS operation (a DRAM gather, a COTS-SSD
  read+gather, an NDP split/command/merge) holds one worker from launch
  to completion, the way a synchronous host thread drives one SLS op at
  a time; :class:`~repro.serving.sharding.ShardedEmbeddingStage`'s
  host-side merge must also win a worker (queueing-only, zero service
  time).  ``workers=None`` (default) is an infinite pool: acquisitions
  are granted synchronously and nothing queues — bit-identical to the
  seed's free overlap, gauges aside.
* :class:`DenseWorkerPool` — a pool of ``workers`` dense-stage NN
  workers with FIFO queueing and per-job service times from
  :class:`DenseServiceModel`.  Because service times are known at
  submission and the discipline is FIFO, each job's start/finish can be
  computed closed-form at submit time (a heap of worker-free instants);
  with one worker the arithmetic — ``start = max(now, busy_until)`` —
  reduces *exactly* to the legacy serialized timeline, which is why
  ``dense_workers=None`` (the legacy default, mapped onto one worker)
  stays bit-identical to the pre-hostpool server.  ``dense_workers=0``
  means unbounded: every dense job starts immediately, the idealized
  host the seed silently assumed for SLS but never offered for dense.
* :class:`DenseServiceModel` — per-model dense service times with
  batch-size scaling: :meth:`~repro.models.base.RecModel.dense_time`
  (already batch-scaled via the host CPU's GEMM model) times an optional
  ``dense_time_scale``, or an explicit per-sample override from
  ``dense_service_s_by_model`` for contention studies.
* :class:`HostResourceModel` — the facade the
  :class:`~repro.serving.server.InferenceServer` owns: builds both pools
  against one :class:`~repro.serving.stats.ServingStats` (which carries
  the wait-time breakdowns and utilization gauges) and summarizes them
  for benchmark reports (``InferenceServer.hostpool_summary()``).

Contention contract (asserted by ``benchmarks/bench_serving_throughput.py``
and ``tests/serving/test_hostpool.py``): at saturation, bounding either
host pool strictly increases tail latency versus the unbounded pool —
the latency-vs-offered-load curves only stay honest at high concurrency
when the host is allowed to run out of workers.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, Dict, Mapping, Optional, Tuple

from ..host.cpu import HostCpu
from ..models.base import RecModel
from .stats import ServingStats, mean_ms

__all__ = [
    "DenseServiceModel",
    "HostSlsPool",
    "DenseWorkerPool",
    "HostResourceModel",
]


class DenseServiceModel:
    """Per-model dense-stage service times with batch-size scaling.

    The default is the repo's existing cost model —
    ``model.dense_time(batch_size, host_cpu)``, whose GEMM terms already
    scale with the batch — left bit-untouched so the default serving
    path reproduces the pre-hostpool numbers exactly.  ``scale``
    multiplies every service time (a knob for studying dense/embedding
    overlap without rebuilding models); ``service_s_by_model`` maps a
    model name to an explicit *per-sample* service time, scaled linearly
    with batch size, overriding the model's own cost model.
    """

    def __init__(
        self,
        host_cpu: HostCpu,
        scale: float = 1.0,
        service_s_by_model: Optional[Mapping[str, float]] = None,
    ):
        if scale <= 0:
            raise ValueError("dense_time_scale must be positive")
        for name, service in (service_s_by_model or {}).items():
            if service <= 0:
                raise ValueError(
                    f"dense service override for {name!r} must be positive"
                )
        self.host_cpu = host_cpu
        self.scale = scale
        self.service_s_by_model = dict(service_s_by_model or {})

    def service_s(self, model: RecModel, batch_size: int) -> float:
        override = self.service_s_by_model.get(model.name)
        if override is not None:
            return self.scale * override * batch_size
        base = model.dense_time(batch_size, self.host_cpu)
        # Skip the multiply at the default so the float is bit-identical
        # to the legacy server's direct dense_time call.
        return base if self.scale == 1.0 else self.scale * base


class HostSlsPool:
    """Bounded pool of host SLS worker threads (``workers=None`` = infinite).

    One worker is held per in-flight per-table SLS operation from launch
    to completion; when all workers are busy, further ``acquire`` calls
    queue FIFO and are granted as releases free workers.  Grants run the
    caller's callback *synchronously* (no simulator event), so an
    infinite pool is a pure pass-through — the embedding stages behave
    bit-identically to the pre-hostpool code while the gauges record.

    Gauges land in :class:`~repro.serving.stats.ServingStats`
    (``sls_ops`` / ``sls_wait_s`` / ``sls_busy_s`` / peaks); live state
    (``in_use``, the wait queue) stays here.  ``on_free`` (wired by the
    server for bounded pools only) lets the
    :class:`~repro.serving.scheduler.BatchScheduler` re-pump when a
    worker frees without a batch having completed.
    """

    def __init__(self, sim, workers: Optional[int], stats: ServingStats):
        if workers is not None and workers < 1:
            raise ValueError("host_sls_workers must be None or >= 1")
        self.sim = sim
        self.workers = workers
        self.stats = stats
        self.in_use = 0
        self._waiting: Deque[Tuple[float, Callable[[], None]]] = deque()
        # Grant instants of currently-held workers, FIFO-paired at
        # release; any pairing yields the same busy-time *sum*.
        self._held_since: Deque[float] = deque()
        self.on_free: Optional[Callable[[], None]] = None

    @property
    def bounded(self) -> bool:
        return self.workers is not None

    @property
    def has_free(self) -> bool:
        """A worker is free right now (always true for infinite pools)."""
        return self.workers is None or self.in_use < self.workers

    @property
    def queued(self) -> int:
        return len(self._waiting)

    # ------------------------------------------------------------------
    def acquire(self, run: Callable[[], None]) -> None:
        """Run ``run`` under a worker: synchronously if one is free,
        otherwise when one frees (FIFO).  Pair with :meth:`release`."""
        if self.has_free:
            self._grant(run, 0.0)
        else:
            self._waiting.append((self.sim.now, run))
            self.stats.record_sls_queue_depth(len(self._waiting))

    def _grant(self, run: Callable[[], None], wait_s: float) -> None:
        self.in_use += 1
        self._held_since.append(self.sim.now)
        self.stats.record_sls_grant(wait_s, self.in_use)
        run()

    def release(self) -> None:
        """Free one worker; grants the oldest waiter (if any) in place."""
        if self.in_use <= 0:
            raise RuntimeError("HostSlsPool.release without a matching acquire")
        self.in_use -= 1
        self.stats.record_sls_release(self.sim.now - self._held_since.popleft())
        if self._waiting:
            enqueued_at, run = self._waiting.popleft()
            self._grant(run, self.sim.now - enqueued_at)
        elif self.on_free is not None:
            self.on_free()

    def utilization(self, span_s: float) -> float:
        """Busy worker-seconds over ``span_s`` (0.0 for infinite pools)."""
        if self.workers is None or span_s <= 0:
            return 0.0
        return self.stats.sls_busy_s / (span_s * self.workers)

    def __repr__(self) -> str:
        cap = "inf" if self.workers is None else self.workers
        return f"HostSlsPool(workers={cap}, in_use={self.in_use}, queued={self.queued})"


class DenseWorkerPool:
    """``workers`` dense-stage NN workers with FIFO queueing.

    Service times are known at submission (from the
    :class:`DenseServiceModel`) and the discipline is FIFO, so each
    job's start is computed closed-form against a heap of worker-free
    instants — no extra simulator events, and with one worker the exact
    ``max(now, busy_until)`` arithmetic of the legacy serialized dense
    stage (the bit-identity the ``dense_workers=None`` default relies
    on).  ``workers=None`` is unbounded: every job starts immediately.
    """

    def __init__(
        self,
        sim,
        workers: Optional[int],
        stats: ServingStats,
        service_model: DenseServiceModel,
    ):
        if workers is not None and workers < 1:
            raise ValueError("dense pool workers must be None or >= 1")
        self.sim = sim
        self.workers = workers
        self.stats = stats
        self.service_model = service_model
        self._free_at = [0.0] * workers if workers is not None else None

    @property
    def bounded(self) -> bool:
        return self.workers is not None

    def submit(
        self, model: RecModel, batch_size: int, on_done: Callable[[], None]
    ) -> Tuple[float, float]:
        """Queue one dense-stage job; ``on_done`` fires at its finish.

        Returns ``(start, finish)`` simulated times — ``start - now`` is
        the job's dense-worker wait, recorded in the stats breakdowns.
        """
        service_s = self.service_model.service_s(model, batch_size)
        now = self.sim.now
        if self._free_at is None:
            start = now
        else:
            free_at = self._free_at[0]
            start = free_at if free_at > now else now
        finish = start + service_s
        if self._free_at is not None:
            heapq.heapreplace(self._free_at, finish)
        self.stats.record_dense_job(model.name, start - now, service_s)
        self.sim.schedule_at(finish, on_done)
        return start, finish

    def utilization(self, span_s: float) -> float:
        """Busy worker-seconds over ``span_s`` (0.0 for unbounded pools)."""
        if self.workers is None or span_s <= 0:
            return 0.0
        return self.stats.dense_busy_s / (span_s * self.workers)

    def __repr__(self) -> str:
        cap = "inf" if self.workers is None else self.workers
        return f"DenseWorkerPool(workers={cap})"


class HostResourceModel:
    """The server's host-side resources: one SLS pool + one dense pool.

    Knob semantics (mirrored in ``ServingConfig`` / ``ScenarioSpec``):

    * ``host_sls_workers`` — ``None`` (default) keeps the seed's
      infinite overlap of per-table gathers and NDP host split/merge,
      bit-identically; an int bounds the pool.
    * ``dense_workers`` — ``None`` (default) keeps the legacy single
      serialized host NN timeline bit-identically (implemented as a
      one-worker pool whose arithmetic reduces to it); an int ``k >= 1``
      is a pool of ``k`` workers; ``0`` means unbounded (every dense job
      starts immediately — the idealized host, the "∞" point of the
      contention sweeps).
    * ``dense_time_scale`` / ``dense_service_s_by_model`` — see
      :class:`DenseServiceModel`.
    """

    def __init__(
        self,
        sim,
        stats: ServingStats,
        host_cpu: HostCpu,
        host_sls_workers: Optional[int] = None,
        dense_workers: Optional[int] = None,
        dense_time_scale: float = 1.0,
        dense_service_s_by_model: Optional[Mapping[str, float]] = None,
    ):
        if dense_workers is not None and dense_workers < 0:
            raise ValueError("dense_workers must be None or >= 0 (0 = unbounded)")
        self.stats = stats
        self.host_sls_workers = host_sls_workers
        self.dense_workers = dense_workers
        self.service_model = DenseServiceModel(
            host_cpu, dense_time_scale, dense_service_s_by_model
        )
        self.sls = HostSlsPool(sim, host_sls_workers, stats)
        if dense_workers is None:
            dense_capacity: Optional[int] = 1   # legacy serialized timeline
        elif dense_workers == 0:
            dense_capacity = None               # unbounded
        else:
            dense_capacity = dense_workers
        self.dense = DenseWorkerPool(sim, dense_capacity, stats, self.service_model)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Capacity, occupancy, wait and utilization per pool (the host
        rows of ``BENCH_serving.json``); utilization is measured over the
        stats window's busy span, like ``throughput_rps``."""
        span = self.stats.busy_span()
        dense_waits = self.stats.dense_wait_s
        return {
            "host_sls": {
                "workers": self.sls.workers,
                "in_use": float(self.sls.in_use),
                "peak_in_use": float(self.stats.sls_peak_in_use),
                "peak_queue": float(self.stats.sls_peak_queue),
                "ops": float(self.stats.sls_ops),
                "busy_s": self.stats.sls_busy_s,
                "mean_wait_ms": mean_ms(self.stats.sls_wait_s),
                "utilization": self.sls.utilization(span),
            },
            "dense": {
                "workers": self.dense.workers,
                "jobs": float(self.stats.dense_jobs),
                "busy_s": self.stats.dense_busy_s,
                "mean_wait_ms": mean_ms(dense_waits),
                "max_wait_ms": max(dense_waits) * 1e3 if dense_waits else 0.0,
                "utilization": self.dense.utilization(span),
            },
        }
