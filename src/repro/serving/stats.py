"""Serving-layer metrics: tail latency percentiles and throughput.

Latency-bounded throughput is the paper's serving framing (Section 2;
RecNMP/MicroRec make the same argument): a deployment provisions to a
p95/p99 SLA, not to mean latency.  :class:`ServingStats` therefore keeps
every completed request's latency (exact percentiles, not bucketed
approximations) alongside throughput and concurrency gauges.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.stats import Accumulator, rank_quantile, summarize_latencies
from .request import InferenceRequest

__all__ = ["ServingStats"]


class ServingStats:
    """Per-request latency and throughput accounting for one server."""

    def __init__(self, sim):
        self.sim = sim
        self.inflight = 0
        self.reset()

    def reset(self) -> None:
        """Discard all recorded history (e.g. benchmark warm-up batches).

        In-flight requests keep being tracked: their completions after a
        reset decrement ``inflight`` but are counted (and their latencies
        recorded) in the fresh window, so back-to-back benchmark
        iterations don't inherit warm-up counts.

        Every recorded counter — including the per-model and per-shard
        maps — is (re)initialized here and only here, so a reset object
        is indistinguishable from a fresh one modulo the live ``inflight``
        gauge (``tests/serving/test_sharding.py`` audits exactly that).
        """
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.max_inflight = self.inflight
        self.batches_dispatched = 0
        self.requests_per_batch = Accumulator()
        self.latencies: List[float] = []
        self.queue_delays: List[float] = []
        self.emb_latencies: List[float] = []
        self.completed_by_model: Dict[str, int] = {}
        self.first_arrival: Optional[float] = None
        self.last_completion: Optional[float] = None
        # Per-shard (per-device) embedding-work breakdowns, keyed
        # model -> shard index.  Populated for every dispatch mode: a
        # replicate worker's whole batch lands on its device's shard
        # entry; a scatter-gather batch credits every shard it touched.
        self.shard_batches: Dict[str, Dict[int, int]] = {}
        self.shard_sub_ops: Dict[str, Dict[int, int]] = {}
        self.shard_lookups: Dict[str, Dict[int, float]] = {}
        self.shard_busy_s: Dict[str, Dict[int, float]] = {}

    # PR 2's unified stats contract: every component with counters
    # exposes ``reset_stats()``; for ServingStats it is the same window
    # reset (the in-flight gauge keeps tracking live requests).
    def reset_stats(self) -> None:
        self.reset()

    # ------------------------------------------------------------------
    # Recording (called by the server/scheduler)
    # ------------------------------------------------------------------
    def record_arrival(self, request: InferenceRequest) -> None:
        self.submitted += 1
        self.inflight += 1
        if self.inflight > self.max_inflight:
            self.max_inflight = self.inflight
        if self.first_arrival is None:
            self.first_arrival = request.t_arrival

    def record_reject(self, request: InferenceRequest) -> None:
        # Rejected requests count as submitted (but never in flight), so
        # submitted == completed + rejected + inflight always holds.
        self.submitted += 1
        self.rejected += 1

    def record_dispatch(self, requests: List[InferenceRequest]) -> None:
        self.batches_dispatched += 1
        self.requests_per_batch.add(float(len(requests)))

    def record_shard_work(
        self, model: str, shard: int, lookups: float, sub_ops: int, busy_s: float
    ) -> None:
        """Credit one coalesced batch's embedding work to one shard.

        ``sub_ops`` is the number of per-table SLS operations the shard
        ran for the batch; ``busy_s`` the simulated span from the
        shard's first op start to its last op end.
        """
        for store, value in (
            (self.shard_batches, 1),
            (self.shard_sub_ops, sub_ops),
            (self.shard_lookups, lookups),
            (self.shard_busy_s, busy_s),
        ):
            per_model = store.setdefault(model, {})
            per_model[shard] = per_model.get(shard, 0) + value

    def record_completion(self, request: InferenceRequest) -> None:
        self.completed += 1
        self.inflight -= 1
        self.latencies.append(request.latency)
        self.queue_delays.append(request.queue_delay)
        if request.t_emb_done >= 0:
            self.emb_latencies.append(request.t_emb_done - request.t_dispatch)
        model = request.model
        self.completed_by_model[model] = self.completed_by_model.get(model, 0) + 1
        self.last_completion = request.t_done

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def settled(self) -> int:
        """Requests that reached a terminal state (complete or rejected)."""
        return self.completed + self.rejected

    def percentile(self, q: float) -> float:
        """Exact latency quantile in seconds (the repo's shared rank rule)."""
        return rank_quantile(sorted(self.latencies), q)

    def throughput_rps(self) -> float:
        """Completed requests per simulated second over the busy interval."""
        if self.completed == 0 or self.first_arrival is None:
            return 0.0
        last = (
            self.last_completion if self.last_completion is not None else self.sim.now
        )
        span = last - self.first_arrival
        return self.completed / span if span > 0 else 0.0

    def mean_latency(self) -> float:
        acc = Accumulator()
        acc.extend(self.latencies)
        return acc.mean

    def summary(self) -> Dict[str, float]:
        """Headline numbers (latencies in milliseconds)."""
        lat = summarize_latencies(self.latencies)
        return {
            "submitted": float(self.submitted),
            "completed": float(self.completed),
            "rejected": float(self.rejected),
            "throughput_rps": self.throughput_rps(),
            "mean_ms": lat["mean_ms"],
            "p50_ms": lat["p50_ms"],
            "p95_ms": lat["p95_ms"],
            "p99_ms": lat["p99_ms"],
            "max_ms": lat["max_ms"],
            "mean_queue_delay_ms": (
                sum(self.queue_delays) / len(self.queue_delays) * 1e3
                if self.queue_delays
                else 0.0
            ),
            "max_inflight": float(self.max_inflight),
            "mean_batch_requests": self.requests_per_batch.mean,
        }

    def shard_summary(self) -> Dict[str, Dict[int, Dict[str, float]]]:
        """Per-model, per-shard work breakdown: batches, SLS ops, lookups,
        busy seconds.  Empty until the scheduler has dispatched work."""
        out: Dict[str, Dict[int, Dict[str, float]]] = {}
        for model, per_shard in self.shard_batches.items():
            out[model] = {}
            for shard in sorted(per_shard):
                out[model][shard] = {
                    "batches": float(self.shard_batches[model][shard]),
                    "sub_ops": float(self.shard_sub_ops[model][shard]),
                    "lookups": float(self.shard_lookups[model][shard]),
                    "busy_s": float(self.shard_busy_s[model][shard]),
                }
        return out

    def __repr__(self) -> str:
        s = self.summary()
        return (
            f"ServingStats(completed={self.completed}, "
            f"tput={s['throughput_rps']:.1f}rps, p50={s['p50_ms']:.2f}ms, "
            f"p95={s['p95_ms']:.2f}ms, p99={s['p99_ms']:.2f}ms)"
        )
