"""Serving-layer metrics: tail latency percentiles, throughput, goodput.

Latency-bounded throughput is the paper's serving framing (Section 2;
RecNMP/MicroRec make the same argument): a deployment provisions to a
p95/p99 SLA, not to mean latency.  :class:`ServingStats` therefore keeps
every completed request's latency (exact percentiles, not bucketed
approximations) alongside throughput and concurrency gauges — and, for
QoS runs (:mod:`repro.serving.admission`), **goodput**: requests
completed *within* their deadline, the metric admission policies trade
raw throughput against.

The core invariant, preserved through every admission path and audited
by ``tests/serving/test_admission.py``::

    submitted == completed + rejected + dropped + inflight
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..obs.resettable import register_resettable
from ..sim.stats import Accumulator, rank_quantile, summarize_latencies
from .request import InferenceRequest

__all__ = ["ServingStats", "mean_ms"]


def mean_ms(values_s: List[float]) -> float:
    """Mean of a list of seconds, in milliseconds (0.0 when empty) — the
    one definition both ``ServingStats.summary`` and
    ``HostResourceModel.summary`` report wait times with."""
    return sum(values_s) / len(values_s) * 1e3 if values_s else 0.0


class ServingStats:
    """Per-request latency and throughput accounting for one server."""

    def __init__(self, sim):
        self.sim = sim
        self.inflight = 0
        self.reset()
        register_resettable(self)

    def reset(self) -> None:
        """Discard all recorded history (e.g. benchmark warm-up batches).

        In-flight requests keep being tracked: their completions after a
        reset decrement ``inflight`` but are counted (and their latencies
        recorded) in the fresh window, so back-to-back benchmark
        iterations don't inherit warm-up counts.

        Every recorded counter — including the per-model, per-reason and
        per-shard maps — is (re)initialized here and only here, so a
        reset object is indistinguishable from a fresh one modulo the
        live ``inflight`` gauge (``tests/serving/test_sharding.py`` and
        ``tests/serving/test_admission.py`` audit exactly that).
        """
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.dropped = 0
        self.goodput = 0            # completed within deadline
        self.deadline_misses = 0    # completed, but late
        self.max_inflight = self.inflight
        self.batches_dispatched = 0
        self.requests_per_batch = Accumulator()
        self.latencies: List[float] = []
        self.queue_delays: List[float] = []
        self.emb_latencies: List[float] = []
        # Arrival-to-shed waits of DROPPED requests (``t_drop`` stamps).
        # Kept apart from ``queue_delays``/``latencies`` on purpose: a
        # dropped request never had a service phase, and folding its
        # wait into the completed-request histograms would drag p50
        # around under heavy shedding (see ``latency_breakdown``).
        self.drop_waits: List[float] = []
        # Admitted-request arrival stamps: the realized arrival process
        # (repro.traces.analysis.interarrival_stats characterizes it, and
        # an ArrivalTrace built from it replays the run).
        self.arrival_times: List[float] = []
        self.first_arrival: Optional[float] = None
        self.last_completion: Optional[float] = None
        # Per-model (per-lane) breakdowns: every terminal path and the
        # goodput split, plus raw per-lane latencies for lane_summary().
        self.submitted_by_model: Dict[str, int] = {}
        self.completed_by_model: Dict[str, int] = {}
        self.rejected_by_model: Dict[str, int] = {}
        self.dropped_by_model: Dict[str, int] = {}
        self.goodput_by_model: Dict[str, int] = {}
        self.latencies_by_model: Dict[str, List[float]] = {}
        # Shed-reason breakdowns (admission.REASON_* keys).
        self.rejects_by_reason: Dict[str, int] = {}
        self.drops_by_reason: Dict[str, int] = {}
        # Per-shard (per-device) embedding-work breakdowns, keyed
        # model -> shard index.  Populated for every dispatch mode: a
        # replicate worker's whole batch lands on its device's shard
        # entry; a scatter-gather batch credits every shard it touched.
        self.shard_batches: Dict[str, Dict[int, int]] = {}
        self.shard_sub_ops: Dict[str, Dict[int, int]] = {}
        self.shard_lookups: Dict[str, Dict[int, float]] = {}
        self.shard_busy_s: Dict[str, Dict[int, float]] = {}
        # Embedding-cache hits credited per shard: host LRU hits (SSD
        # backend), device emb-cache + host partition hits (NDP backend).
        # Together with shard_lookups this yields the served cache hit
        # rate — the locality metric cluster routing is judged on.
        self.shard_cache_hits: Dict[str, Dict[int, float]] = {}
        # Host resource model gauges (repro.serving.hostpool): the SLS
        # worker pool driving per-table gathers / NDP split-merge, and
        # the dense-stage NN worker pool.  Wait lists are per granted
        # acquisition / per dense job; busy seconds are worker-seconds
        # held (SLS) or summed service time (dense).  Peaks rebuild from
        # the next grant after a mid-flight reset, mirroring the
        # ``max_inflight`` window semantics.
        self.sls_ops = 0
        self.sls_wait_s: List[float] = []
        self.sls_busy_s = 0.0
        self.sls_peak_in_use = 0
        self.sls_peak_queue = 0
        self.dense_jobs = 0
        self.dense_wait_s: List[float] = []
        self.dense_wait_s_by_model: Dict[str, List[float]] = {}
        self.dense_busy_s = 0.0
        # Fault / degradation accounting (repro.faults): completed
        # requests served partially because a shard's device was down,
        # their total missing (bag, table) pairs, embedding rows/pages
        # lost to uncorrectable flash reads, and SLS ops the NDP backend
        # re-routed through the host path after an engine crash.  All
        # stay zero under healthy operation.
        self.degraded = 0
        self.missing_bags = 0
        self.uncorrectable_rows = 0.0
        self.uncorrectable_pages = 0.0
        self.ndp_fallbacks = 0
        # Tail tolerance (server side): queued requests cancelled by a
        # router timeout before dispatch.
        self.timeout_cancels = 0
        # Live embedding updates (repro.serving.updates): commit batches
        # applied against this server's registrations, distinct rows
        # committed, cache entries invalidated / written through, device
        # page writes issued and completed (with per-write latencies),
        # and writes the throttled policy deferred behind reads.  All
        # stay zero for read-only scenarios.
        self.update_batches = 0
        self.update_rows = 0
        self.update_invalidations = 0
        self.update_partition_writes = 0
        self.update_pages_written = 0
        self.update_writes_completed = 0
        self.update_write_latencies: List[float] = []
        self.update_writes_deferred = 0

    # PR 2's unified stats contract: every component with counters
    # exposes ``reset_stats()``; for ServingStats it is the same window
    # reset (the in-flight gauge keeps tracking live requests).
    def reset_stats(self) -> None:
        self.reset()

    # ------------------------------------------------------------------
    # Recording (called by the server/scheduler)
    # ------------------------------------------------------------------
    @staticmethod
    def _bump(store: Dict[str, int], key: str, by: int = 1) -> None:
        store[key] = store.get(key, 0) + by

    def record_arrival(self, request: InferenceRequest) -> None:
        self.submitted += 1
        self.inflight += 1
        self._bump(self.submitted_by_model, request.model)
        self.arrival_times.append(request.t_arrival)
        if self.inflight > self.max_inflight:
            self.max_inflight = self.inflight
        if self.first_arrival is None:
            self.first_arrival = request.t_arrival

    def record_reject(self, request: InferenceRequest) -> None:
        # Rejected requests count as submitted (but never in flight), so
        # submitted == completed + rejected + dropped + inflight holds.
        self.submitted += 1
        self.rejected += 1
        self._bump(self.submitted_by_model, request.model)
        self._bump(self.rejected_by_model, request.model)
        self._bump(self.rejects_by_reason, request.drop_reason or "capacity")

    def record_drop(self, request: InferenceRequest) -> None:
        """An *admitted* request was shed before dispatch (QoS drop)."""
        self.dropped += 1
        self.inflight -= 1
        self._bump(self.dropped_by_model, request.model)
        self._bump(self.drops_by_reason, request.drop_reason or "deadline")
        if request.t_drop >= 0:
            self.drop_waits.append(request.drop_wait)

    def record_dispatch(self, requests: List[InferenceRequest]) -> None:
        self.batches_dispatched += 1
        self.requests_per_batch.add(float(len(requests)))

    def record_shard_work(
        self,
        model: str,
        shard: int,
        lookups: float,
        sub_ops: int,
        busy_s: float,
        cache_hits: float = 0.0,
    ) -> None:
        """Credit one coalesced batch's embedding work to one shard.

        ``sub_ops`` is the number of per-table SLS operations the shard
        ran for the batch; ``busy_s`` the simulated span from the
        shard's first op start to its last op end; ``cache_hits`` the
        lookups the shard's embedding caches served without device work.
        """
        for store, value in (
            (self.shard_batches, 1),
            (self.shard_sub_ops, sub_ops),
            (self.shard_lookups, lookups),
            (self.shard_busy_s, busy_s),
            (self.shard_cache_hits, cache_hits),
        ):
            per_model = store.setdefault(model, {})
            per_model[shard] = per_model.get(shard, 0) + value

    # -- host resource model (repro.serving.hostpool) ------------------
    def record_sls_grant(self, wait_s: float, in_use: int) -> None:
        """A host SLS worker was granted after ``wait_s`` of queueing."""
        self.sls_ops += 1
        self.sls_wait_s.append(wait_s)
        if in_use > self.sls_peak_in_use:
            self.sls_peak_in_use = in_use

    def record_sls_release(self, held_s: float) -> None:
        self.sls_busy_s += held_s

    def record_sls_queue_depth(self, depth: int) -> None:
        if depth > self.sls_peak_queue:
            self.sls_peak_queue = depth

    def record_dense_job(
        self, model: str, wait_s: float, service_s: float
    ) -> None:
        """One dense-stage job started after ``wait_s`` in the pool queue."""
        self.dense_jobs += 1
        self.dense_wait_s.append(wait_s)
        self.dense_wait_s_by_model.setdefault(model, []).append(wait_s)
        self.dense_busy_s += service_s

    def record_completion(self, request: InferenceRequest) -> None:
        self.completed += 1
        self.inflight -= 1
        self.latencies.append(request.latency)
        self.queue_delays.append(request.queue_delay)
        if request.t_emb_done >= 0:
            self.emb_latencies.append(request.t_emb_done - request.t_dispatch)
        if request.degraded:
            self.degraded += 1
            self.missing_bags += request.missing_bags
        model = request.model
        self._bump(self.completed_by_model, model)
        self.latencies_by_model.setdefault(model, []).append(request.latency)
        if request.within_deadline:
            self.goodput += 1
            self._bump(self.goodput_by_model, model)
        else:
            self.deadline_misses += 1
        self.last_completion = request.t_done

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def settled(self) -> int:
        """Requests that reached a terminal state (complete, rejected or
        dropped)."""
        return self.completed + self.rejected + self.dropped

    def total_lookups(self) -> float:
        """Embedding lookups served across all models and shards."""
        return sum(
            sum(per_shard.values()) for per_shard in self.shard_lookups.values()
        )

    def total_cache_hits(self) -> float:
        """Lookups the embedding caches absorbed (host LRU, device
        emb-cache, NDP partition) across all models and shards."""
        return sum(
            sum(per_shard.values())
            for per_shard in self.shard_cache_hits.values()
        )

    def cache_hit_rate(self) -> float:
        """Cache-served fraction of all embedding lookups (0.0 when no
        lookups were dispatched or no cache is configured)."""
        lookups = self.total_lookups()
        return self.total_cache_hits() / lookups if lookups > 0 else 0.0

    def percentile(self, q: float) -> float:
        """Exact latency quantile in seconds (the repo's shared rank rule)."""
        return rank_quantile(sorted(self.latencies), q)

    def busy_span(self) -> float:
        """First arrival to last completion (the throughput/utilization
        window); 0.0 before any arrival."""
        if self.first_arrival is None:
            return 0.0
        last = (
            self.last_completion if self.last_completion is not None else self.sim.now
        )
        return last - self.first_arrival

    # Backwards-compatible private alias (pre-hostpool name).
    _busy_span = busy_span

    def throughput_rps(self) -> float:
        """Completed requests per simulated second over the busy interval."""
        if self.completed == 0:
            return 0.0
        span = self._busy_span()
        return self.completed / span if span > 0 else 0.0

    def goodput_rps(self) -> float:
        """Within-deadline completions per simulated second.

        Requests without an SLO deadline (``deadline == inf``) always
        complete in time, so for no-QoS runs goodput equals throughput.
        """
        if self.goodput == 0:
            return 0.0
        span = self._busy_span()
        return self.goodput / span if span > 0 else 0.0

    def mean_latency(self) -> float:
        acc = Accumulator()
        acc.extend(self.latencies)
        return acc.mean

    def summary(self) -> Dict[str, float]:
        """Headline numbers (latencies in milliseconds)."""
        lat = summarize_latencies(self.latencies)
        return {
            "submitted": float(self.submitted),
            "completed": float(self.completed),
            "rejected": float(self.rejected),
            "dropped": float(self.dropped),
            "goodput": float(self.goodput),
            "throughput_rps": self.throughput_rps(),
            "goodput_rps": self.goodput_rps(),
            "mean_ms": lat["mean_ms"],
            "p50_ms": lat["p50_ms"],
            "p95_ms": lat["p95_ms"],
            "p99_ms": lat["p99_ms"],
            "max_ms": lat["max_ms"],
            "mean_queue_delay_ms": mean_ms(self.queue_delays),
            "max_inflight": float(self.max_inflight),
            "mean_batch_requests": self.requests_per_batch.mean,
            # Host resource model: time spent waiting for a dense NN
            # worker / a host SLS worker (0.0 with unbounded pools).
            "mean_dense_wait_ms": mean_ms(self.dense_wait_s),
            "mean_sls_wait_ms": mean_ms(self.sls_wait_s),
        }

    def update_summary(self) -> Dict[str, float]:
        """Live-update gauges (separate from :meth:`summary`, whose key
        set is pinned by the serving golden).  All zeros for read-only
        scenarios."""
        return {
            "update_batches": float(self.update_batches),
            "update_rows": float(self.update_rows),
            "update_invalidations": float(self.update_invalidations),
            "update_partition_writes": float(self.update_partition_writes),
            "update_pages_written": float(self.update_pages_written),
            "update_writes_completed": float(self.update_writes_completed),
            "update_writes_deferred": float(self.update_writes_deferred),
            "mean_update_write_ms": mean_ms(self.update_write_latencies),
        }

    def latency_breakdown(self) -> Dict[str, Dict[str, float]]:
        """Queue-wait vs. service split, with drops held apart.

        ``completed`` decomposes each finished request's latency into
        queue wait (``t_dispatch - t_arrival``) and service time
        (dispatch to done); ``dropped`` reports only the shed waits
        (``t_drop - t_arrival``) — dropped requests never reach service
        and are excluded from the service-time histogram entirely.
        Separate from :meth:`summary`, whose key set the serving golden
        pins.
        """
        service_s = [
            latency - wait
            for latency, wait in zip(self.latencies, self.queue_delays)
        ]
        queue_sorted = sorted(self.queue_delays)
        service_sorted = sorted(service_s)
        drop_sorted = sorted(self.drop_waits)
        return {
            "completed": {
                "count": float(self.completed),
                "mean_queue_ms": mean_ms(self.queue_delays),
                "p50_queue_ms": rank_quantile(queue_sorted, 0.50) * 1e3,
                "p99_queue_ms": rank_quantile(queue_sorted, 0.99) * 1e3,
                "mean_service_ms": mean_ms(service_s),
                "p50_service_ms": rank_quantile(service_sorted, 0.50) * 1e3,
                "p99_service_ms": rank_quantile(service_sorted, 0.99) * 1e3,
            },
            "dropped": {
                "count": float(self.dropped),
                "waits_recorded": float(len(self.drop_waits)),
                "mean_wait_ms": mean_ms(self.drop_waits),
                "p50_wait_ms": rank_quantile(drop_sorted, 0.50) * 1e3,
                "max_wait_ms": drop_sorted[-1] * 1e3 if drop_sorted else 0.0,
            },
        }

    def lane_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-model (per-lane/tenant) QoS breakdown.

        One row per model that submitted anything: terminal counts, the
        goodput fraction of submissions, and the lane's own p50/p95
        latency — the numbers an SLO dashboard would show per tenant.
        """
        out: Dict[str, Dict[str, float]] = {}
        for model in sorted(self.submitted_by_model):
            submitted = self.submitted_by_model[model]
            lane_lat = sorted(self.latencies_by_model.get(model, []))
            out[model] = {
                "submitted": float(submitted),
                "completed": float(self.completed_by_model.get(model, 0)),
                "rejected": float(self.rejected_by_model.get(model, 0)),
                "dropped": float(self.dropped_by_model.get(model, 0)),
                "goodput": float(self.goodput_by_model.get(model, 0)),
                "goodput_frac": (
                    self.goodput_by_model.get(model, 0) / submitted
                    if submitted
                    else 0.0
                ),
                "p50_ms": rank_quantile(lane_lat, 0.50) * 1e3,
                "p95_ms": rank_quantile(lane_lat, 0.95) * 1e3,
            }
        return out

    def shard_summary(self) -> Dict[str, Dict[int, Dict[str, float]]]:
        """Per-model, per-shard work breakdown: batches, SLS ops, lookups,
        busy seconds.  Empty until the scheduler has dispatched work."""
        out: Dict[str, Dict[int, Dict[str, float]]] = {}
        for model, per_shard in self.shard_batches.items():
            out[model] = {}
            for shard in sorted(per_shard):
                out[model][shard] = {
                    "batches": float(self.shard_batches[model][shard]),
                    "sub_ops": float(self.shard_sub_ops[model][shard]),
                    "lookups": float(self.shard_lookups[model][shard]),
                    "busy_s": float(self.shard_busy_s[model][shard]),
                    "cache_hits": float(
                        self.shard_cache_hits.get(model, {}).get(shard, 0.0)
                    ),
                }
        return out

    def __repr__(self) -> str:
        s = self.summary()
        return (
            f"ServingStats(completed={self.completed}, "
            f"tput={s['throughput_rps']:.1f}rps, p50={s['p50_ms']:.2f}ms, "
            f"p95={s['p95_ms']:.2f}ms, p99={s['p99_ms']:.2f}ms)"
        )
