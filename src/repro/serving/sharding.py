"""Cross-SSD table sharding policies and the scatter-gather embedding stage.

``register_model(num_workers=N)`` historically *replicated* a whole model
onto N attached SSDs; throughput scaled only because coalesced batches
round-robined across full copies.  This module instead spreads the
*tables* — and, for the large ones, the *rows* — across devices, the way
RecNMP-style systems scale embedding capacity and parallelism beyond one
device:

* :class:`ReplicatePolicy` — the legacy behaviour (whole-model copies,
  round-robin batches).  Kept as the default and bit-identical baseline.
* :class:`TableShardPolicy` — each table lives wholly on exactly one
  device, assigned greedily so per-device load (bytes or traffic)
  balances.  Every table's batched SLS op is unchanged — it just runs on
  its home device — so pooled results equal replicate mode exactly on
  the order-deterministic DRAM backend and up to device-side float32
  accumulation order on ssd/ndp (page-arrival order shifts when tables
  spread out; the same caveat the repo's bit-for-bit backend checks
  carry).
* :class:`RowShardPolicy` — tables at or above ``threshold_rows`` are
  partitioned row-wise across all devices (modulo hash by default, or
  frequency ranges when a traffic profile is supplied, after RecFlash's
  frequency-based data mapping); smaller tables are whole-assigned like
  :class:`TableShardPolicy`.  Each device returns partial sums, merged
  host-side, so per-bag float accumulation order changes — results are
  equal to replicate mode up to float32 summation order.

:class:`ShardedEmbeddingStage` is the scatter-gather executor the
:class:`~repro.serving.scheduler.BatchScheduler` drives: it splits one
coalesced batch's bags into per-shard sub-batches with shard-local ids
(one vectorized :func:`~repro.core.vecops.group_slices` pass), dispatches
them concurrently to every device's backend (dram | ssd | ndp), and
merges the partial sums host-side.  The shard-local id remapping
invariant it relies on lives in
:meth:`~repro.embedding.table.EmbeddingTable.row_shard`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.vecops import group_slices
from ..embedding.backends.base import SlsBackend, SlsOpResult, flatten_bags
from ..embedding.stage import EmbStageResult
from ..embedding.table import EmbeddingTable
from ..sim.stats import Breakdown

__all__ = [
    "RowMapping",
    "ModuloRowMapping",
    "LookupRowMapping",
    "TablePlacement",
    "ShardPlan",
    "ShardingPolicy",
    "ReplicatePolicy",
    "TableShardPolicy",
    "RowShardPolicy",
    "scatter_bags",
    "ShardedEmbeddingStage",
]


# ----------------------------------------------------------------------
# Row mappings: global id <-> (shard, local id)
# ----------------------------------------------------------------------
class RowMapping(ABC):
    """How one table's global row ids map onto shard-local ids.

    The contract every implementation upholds (the id-remap invariant):

    * every global id belongs to exactly one shard;
    * ``global_ids(s)`` is strictly ascending and ``local_ids`` is its
      inverse, so local order preserves global order within a shard
      (order-sensitive backends accumulate identically to the unsharded
      table restricted to that shard's rows).
    """

    rows: int
    num_shards: int

    @abstractmethod
    def shard_of(self, ids: np.ndarray) -> np.ndarray:
        """Owning shard index for each global id (vectorized)."""

    @abstractmethod
    def local_ids(self, ids: np.ndarray) -> np.ndarray:
        """Shard-local id for each global id (vectorized)."""

    @abstractmethod
    def global_ids(self, shard: int) -> np.ndarray:
        """Ascending global ids owned by ``shard``."""

    def shard_rows(self, shard: int) -> int:
        return int(self.global_ids(shard).size)


class ModuloRowMapping(RowMapping):
    """Hash partitioning: global id ``g`` lives on shard ``g % N`` as
    local id ``g // N`` (both closed-form; nothing materialized)."""

    def __init__(self, rows: int, num_shards: int):
        if num_shards < 1 or rows < num_shards:
            raise ValueError("need rows >= num_shards >= 1")
        self.rows = rows
        self.num_shards = num_shards

    def shard_of(self, ids: np.ndarray) -> np.ndarray:
        return np.asarray(ids, dtype=np.int64) % self.num_shards

    def local_ids(self, ids: np.ndarray) -> np.ndarray:
        return np.asarray(ids, dtype=np.int64) // self.num_shards

    def global_ids(self, shard: int) -> np.ndarray:
        return np.arange(shard, self.rows, self.num_shards, dtype=np.int64)

    def shard_rows(self, shard: int) -> int:
        return len(range(shard, self.rows, self.num_shards))


class LookupRowMapping(RowMapping):
    """Arbitrary row→shard assignment backed by dense lookup arrays.

    Built by :meth:`from_weights` for frequency-range partitioning:
    rows are ranked by profiled traffic and the rank order is cut into
    contiguous ranges of roughly equal total traffic, one per shard —
    hot rows are spread deliberately instead of hashed blindly.
    """

    def __init__(self, shard_of: np.ndarray):
        shard_of = np.asarray(shard_of, dtype=np.int64)
        if shard_of.ndim != 1 or shard_of.size < 1:
            raise ValueError("shard_of must be a non-empty 1-D array")
        self.rows = int(shard_of.size)
        self.num_shards = int(shard_of.max()) + 1
        counts = np.bincount(shard_of, minlength=self.num_shards)
        if counts.min() < 1:
            raise ValueError("every shard must own at least one row")
        self._shard_of = shard_of
        # Local id = rank among the shard's rows in ascending global id:
        # one cumulative count per shard, vectorized over all rows.
        one = np.ones(self.rows, dtype=np.int64)
        local = np.zeros(self.rows, dtype=np.int64)
        for s in range(self.num_shards):
            mask = shard_of == s
            local[mask] = np.cumsum(one[mask]) - 1
        self._local_of = local

    @classmethod
    def from_weights(cls, weights: np.ndarray, num_shards: int) -> "LookupRowMapping":
        """Frequency-range partition: balance summed ``weights`` per shard."""
        weights = np.asarray(weights, dtype=np.float64)
        rows = weights.size
        if rows < num_shards:
            raise ValueError("need rows >= num_shards")
        order = np.argsort(-weights, kind="stable")  # hottest first
        shard_of_rank = np.empty(rows, dtype=np.int64)
        total = float(weights.sum())
        if total > 0:
            csum = np.cumsum(weights[order])
            cuts = np.searchsorted(
                csum, total * np.arange(1, num_shards) / num_shards, side="left"
            )
        else:
            cuts = np.array([], dtype=np.int64)
        bounds = np.concatenate(([0], np.asarray(cuts, dtype=np.int64), [rows]))
        if np.any(np.diff(bounds) < 1):
            # Degenerate profiles (one row dominating, all-zero weights)
            # can empty a range; fall back to equal-count ranges.
            bounds = np.linspace(0, rows, num_shards + 1).astype(np.int64)
        for s in range(num_shards):
            shard_of_rank[bounds[s] : bounds[s + 1]] = s
        shard_of = np.empty(rows, dtype=np.int64)
        shard_of[order] = shard_of_rank
        return cls(shard_of)

    def shard_of(self, ids: np.ndarray) -> np.ndarray:
        return self._shard_of[np.asarray(ids, dtype=np.int64)]

    def local_ids(self, ids: np.ndarray) -> np.ndarray:
        return self._local_of[np.asarray(ids, dtype=np.int64)]

    def global_ids(self, shard: int) -> np.ndarray:
        return np.flatnonzero(self._shard_of == shard).astype(np.int64)


# ----------------------------------------------------------------------
# Shard plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TablePlacement:
    """Where one table's rows live.

    ``mapping is None`` means the whole table lives on ``shards[0]``;
    otherwise the table is row-partitioned across ``shards`` by
    ``mapping``.
    """

    table: str
    shards: Tuple[int, ...]
    mapping: Optional[RowMapping] = None

    def __post_init__(self) -> None:
        if not self.shards:
            raise ValueError("a placement needs at least one shard")
        if self.mapping is None and len(self.shards) != 1:
            raise ValueError("whole-table placement must name exactly one shard")
        if self.mapping is not None and len(self.shards) != self.mapping.num_shards:
            raise ValueError("mapping shard count must match placement shards")


@dataclass(frozen=True)
class ShardPlan:
    """A complete model→devices placement produced by a policy."""

    num_shards: int
    mode: str  # "replicate" | "table" | "row"
    placements: Dict[str, TablePlacement]

    def tables_on(self, shard: int) -> List[str]:
        """Table names with a piece (whole or row shard) on ``shard``."""
        return [
            name for name, p in self.placements.items() if shard in p.shards
        ]

    def validate(self, feature_names: Sequence[str]) -> None:
        if set(self.placements) != set(feature_names):
            raise ValueError(
                f"plan covers {sorted(self.placements)} but model has "
                f"{sorted(feature_names)}"
            )
        for placement in self.placements.values():
            if max(placement.shards) >= self.num_shards:
                raise ValueError(
                    f"placement for {placement.table!r} names shard "
                    f"{max(placement.shards)} >= num_shards {self.num_shards}"
                )


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
class ShardingPolicy(ABC):
    """Strategy deciding how a model's tables spread across N devices."""

    name = "base"

    @abstractmethod
    def plan(self, model, num_shards: int) -> ShardPlan:
        """Place ``model``'s tables on ``num_shards`` devices."""


class ReplicatePolicy(ShardingPolicy):
    """Whole-model replication per device — the pre-sharding behaviour.

    The serving layer special-cases this policy onto the original
    replicate path (one :class:`~repro.serving.scheduler.ModelWorker`
    per device, full tables each, batches round-robin), so results are
    bit-identical to ``register_model`` without a policy.
    """

    name = "replicate"

    def plan(self, model, num_shards: int) -> ShardPlan:
        # Descriptive only (every device holds a full copy); the server
        # never routes replicate-mode dispatch through a plan.
        placements = {
            f.name: TablePlacement(f.name, (0,), None) for f in model.features
        }
        return ShardPlan(num_shards, "replicate", placements)


def _table_weight(feature, balance_by: str) -> float:
    if balance_by == "bytes":
        return float(feature.spec.logical_bytes)
    if balance_by == "traffic":
        # Expected lookups per sample times row bytes: bandwidth demand.
        return float(feature.lookups * feature.spec.row_bytes)
    raise ValueError(f"unknown balance_by {balance_by!r} (bytes|traffic)")


def _assign_whole(features, num_shards: int, balance_by: str) -> Dict[str, int]:
    """Greedy LPT bin packing: heaviest table to the least-loaded shard."""
    loads = [0.0] * num_shards
    home: Dict[str, int] = {}
    weighted = sorted(
        features, key=lambda f: (-_table_weight(f, balance_by), f.name)
    )
    for feature in weighted:
        shard = min(range(num_shards), key=lambda s: (loads[s], s))
        loads[shard] += _table_weight(feature, balance_by)
        home[feature.name] = shard
    return home


class TableShardPolicy(ShardingPolicy):
    """Whole tables assigned to devices, balancing size or traffic.

    ``balance_by='bytes'`` balances stored bytes (capacity scaling);
    ``'traffic'`` balances expected lookup bandwidth (throughput
    scaling).  Per-table SLS ops are unchanged, so pooled outputs equal
    replicate mode (exactly on DRAM; up to device-side accumulation
    order on ssd/ndp).
    """

    name = "table"

    def __init__(self, balance_by: str = "traffic"):
        self.balance_by = balance_by
        if balance_by not in ("bytes", "traffic"):
            raise ValueError(f"unknown balance_by {balance_by!r} (bytes|traffic)")

    def plan(self, model, num_shards: int) -> ShardPlan:
        home = _assign_whole(model.features, num_shards, self.balance_by)
        placements = {
            name: TablePlacement(name, (shard,), None)
            for name, shard in home.items()
        }
        return ShardPlan(num_shards, "table", placements)


class RowShardPolicy(ShardingPolicy):
    """Row-partition large tables across all devices; whole-assign the rest.

    Tables with ``rows >= threshold_rows`` are split by
    :class:`ModuloRowMapping` (hash) or, when ``profiles`` supplies a
    per-row traffic weight array for the table, by
    :meth:`LookupRowMapping.from_weights` (frequency ranges — hot rows
    spread deliberately across devices).  Pooled outputs equal replicate
    mode up to float32 partial-sum order.
    """

    name = "row"

    def __init__(
        self,
        threshold_rows: int = 1 << 15,
        profiles: Optional[Dict[str, np.ndarray]] = None,
        balance_by: str = "traffic",
    ):
        if threshold_rows < 1:
            raise ValueError("threshold_rows must be >= 1")
        self.threshold_rows = threshold_rows
        self.profiles = dict(profiles or {})
        self.balance_by = balance_by
        if balance_by not in ("bytes", "traffic"):
            raise ValueError(f"unknown balance_by {balance_by!r} (bytes|traffic)")

    def plan(self, model, num_shards: int) -> ShardPlan:
        split = [
            f
            for f in model.features
            if f.spec.rows >= max(self.threshold_rows, num_shards)
        ]
        whole = [f for f in model.features if f not in split]
        placements: Dict[str, TablePlacement] = {}
        for feature in split:
            profile = self.profiles.get(feature.name)
            if profile is not None:
                profile = np.asarray(profile, dtype=np.float64)
                if profile.size != feature.spec.rows:
                    raise ValueError(
                        f"profile for {feature.name!r} has {profile.size} "
                        f"weights but the table has {feature.spec.rows} rows"
                    )
                mapping: RowMapping = LookupRowMapping.from_weights(
                    profile, num_shards
                )
            else:
                mapping = ModuloRowMapping(feature.spec.rows, num_shards)
            placements[feature.name] = TablePlacement(
                feature.name, tuple(range(num_shards)), mapping
            )
        for name, shard in _assign_whole(whole, num_shards, self.balance_by).items():
            placements[name] = TablePlacement(name, (shard,), None)
        return ShardPlan(num_shards, "row", placements)


# ----------------------------------------------------------------------
# Scatter: split one batch's bags into per-shard sub-bags
# ----------------------------------------------------------------------
def scatter_bags(
    bags: Sequence[np.ndarray], mapping: RowMapping
) -> Dict[int, List[np.ndarray]]:
    """Split per-result bags into shard-local per-result bags.

    Returns only the shards that received at least one lookup; each
    shard's value is ``len(bags)`` bags of *shard-local* ids (possibly
    empty bags), in the same order, so a shard's partial SLS lines up
    row-for-row with the merged result.  One vectorized pass: flatten,
    group by owning shard (:func:`~repro.core.vecops.group_slices` —
    stable, so within a shard the bag order and intra-bag id order are
    preserved), remap to local ids, split back into bags.
    """
    rows, rids = flatten_bags(bags)
    if rows.size == 0:
        return {}
    shard_keys = mapping.shard_of(rows)
    local = mapping.local_ids(rows)
    uniq, order, bounds = group_slices(shard_keys)
    out: Dict[int, List[np.ndarray]] = {}
    for i, shard in enumerate(uniq):
        members = order[bounds[i] : bounds[i + 1]]  # ascending positions
        counts = np.bincount(rids[members], minlength=len(bags))
        out[int(shard)] = np.split(local[members], np.cumsum(counts)[:-1])
    return out


# ----------------------------------------------------------------------
# Gather: the scatter-gather embedding stage
# ----------------------------------------------------------------------
class ShardedEmbeddingStage:
    """Scatter-gather executor over per-shard SLS backends.

    Drop-in for :class:`~repro.embedding.stage.EmbeddingStage` from the
    scheduler's point of view (same ``start(bags_by_table, on_done)``
    contract, same :class:`EmbStageResult`), but one batch fans out to
    every device owning a piece of any requested table and the partial
    sums merge host-side.  ``per_shard`` on the result carries the
    per-device partial results for stats.

    ``backends_by_shard[s][table_name]`` is the backend serving table
    piece ``table_name`` on device ``s`` (shard tables for row-split
    placements, full tables for whole placements).

    ``sls_pool`` (optional — the server's
    :class:`~repro.serving.hostpool.HostSlsPool`) bounds the host SLS
    workers: each per-shard per-table sub-op holds one worker from
    launch to completion, and the host-side *merge* of the partial sums
    must also win a worker (zero service time, queueing-only) before the
    batch can finish — under heavy concurrency the scatter-gather
    overlap is no longer free.  ``None`` keeps the legacy free overlap.
    """

    def __init__(
        self,
        plan: ShardPlan,
        backends_by_shard: Dict[int, Dict[str, SlsBackend]],
        sls_pool=None,
    ):
        if not backends_by_shard or not any(backends_by_shard.values()):
            raise ValueError("need at least one shard backend")
        self.plan = plan
        self.backends_by_shard = backends_by_shard
        self.sls_pool = sls_pool
        sims = {
            id(b.system.sim)
            for shard in backends_by_shard.values()
            for b in shard.values()
        }
        if len(sims) != 1:
            raise ValueError("all shard backends must share one simulator")
        self.sim = next(
            b.system.sim
            for shard in backends_by_shard.values()
            for b in shard.values()
        )
        self.dims = {
            name: b.table.spec.dim
            for shard in backends_by_shard.values()
            for name, b in shard.items()
        }

    # ------------------------------------------------------------------
    def start(
        self,
        bags_by_table: Dict[str, Sequence[np.ndarray]],
        on_done: Callable[[EmbStageResult], None],
    ) -> None:
        unknown = set(bags_by_table) - set(self.plan.placements)
        if unknown:
            raise KeyError(f"no placement for tables {sorted(unknown)}")
        start = self.sim.now
        tracer = self.sim.tracer
        n_bags = {name: len(bags) for name, bags in bags_by_table.items()}

        # ---- scatter: (shard, table) -> shard-local bags -------------
        # Sub-batches owed to an unavailable (fail-stopped) device are
        # skipped instead of dispatched: the batch completes as a partial
        # sum and ``missing_by_table`` records which bags lost lookups —
        # graceful degradation rather than a failed batch.
        jobs: List[Tuple[int, str, List[np.ndarray]]] = []
        skipped: Dict[str, List[np.ndarray]] = {}

        def skip(name: str, sub_bags: Sequence[np.ndarray]) -> None:
            affected = np.flatnonzero(
                np.asarray(
                    [np.asarray(b).size for b in sub_bags], dtype=np.int64
                )
            )
            if affected.size:
                skipped.setdefault(name, []).append(affected)

        for name, bags in bags_by_table.items():
            placement = self.plan.placements[name]
            if placement.mapping is None:
                shard = placement.shards[0]
                if self.backends_by_shard[shard][name].available:
                    jobs.append((shard, name, list(bags)))
                else:
                    skip(name, bags)
            else:
                for shard, sub in scatter_bags(bags, placement.mapping).items():
                    if self.backends_by_shard[shard][name].available:
                        jobs.append((shard, name, sub))
                    else:
                        skip(name, sub)
        missing_by_table = {
            name: np.unique(np.concatenate(chunks))
            for name, chunks in skipped.items()
        }

        per_shard: Dict[int, Dict[str, SlsOpResult]] = {}
        pending = {"n": len(jobs)}

        def merge() -> None:
            values: Dict[str, np.ndarray] = {}
            per_table: Dict[str, SlsOpResult] = {}
            breakdown = Breakdown()
            for name in bags_by_table:
                pieces = [
                    (shard, results[name])
                    for shard, results in sorted(per_shard.items())
                    if name in results
                ]
                per_table[name] = self._merge_table(name, n_bags[name], pieces)
                values[name] = per_table[name].values
                breakdown.merge(per_table[name].breakdown)
            on_done(
                EmbStageResult(
                    values=values,
                    per_table=per_table,
                    start_time=start,
                    end_time=self.sim.now,
                    breakdown=breakdown,
                    per_shard=per_shard,
                    missing_by_table=missing_by_table,
                )
            )

        def finish() -> None:
            # The host-side gather is host SLS work too: with a bounded
            # pool it must win a worker (queueing-only, zero service
            # time) before the partial sums merge and the batch finishes.
            if self.sls_pool is None:
                merge()
                return

            merge_span = (
                tracer.begin("shard.merge") if tracer is not None else None
            )

            def pooled_merge() -> None:
                if merge_span is not None:
                    tracer.end(merge_span)
                self.sls_pool.release()
                merge()

            self.sls_pool.acquire(pooled_merge)

        if not jobs:
            self.sim.call_soon(finish)
            return

        def job_done(
            shard: int, name: str, result: SlsOpResult, job_span=None
        ) -> None:
            if job_span is not None:
                tracer.end(job_span)
            per_shard.setdefault(shard, {})[name] = result
            pending["n"] -= 1
            if pending["n"] == 0:
                finish()

        # Scatter-gather tracing: one ``shard.job`` span per (shard,
        # table) sub-op, opened at scatter (so a bounded SLS pool's
        # queueing shows inside it) and pushed around the backend launch
        # so the backend's ``sls_op`` span parents under it.
        for shard, name, sub_bags in jobs:
            backend = self.backends_by_shard[shard][name]
            job_span = (
                tracer.begin("shard.job", shard=shard, table=name)
                if tracer is not None
                else None
            )
            if self.sls_pool is None:
                if job_span is not None:
                    tracer.push(job_span)
                backend.start(
                    sub_bags,
                    lambda result, _s=shard, _n=name, _j=job_span: job_done(
                        _s, _n, result, _j
                    ),
                )
                if job_span is not None:
                    tracer.pop()
                continue

            # One host SLS worker per sub-op, held launch-to-completion.
            def launch(_s=shard, _n=name, _b=backend, _bags=sub_bags,
                       _j=job_span):
                def op_done(result, _s=_s, _n=_n, _j=_j):
                    self.sls_pool.release()
                    job_done(_s, _n, result, _j)

                if _j is not None:
                    tracer.push(_j)
                _b.start(_bags, op_done)
                if _j is not None:
                    tracer.pop()

            self.sls_pool.acquire(launch)

    def _merge_table(
        self, name: str, n_bags: int, pieces: List[Tuple[int, SlsOpResult]]
    ) -> SlsOpResult:
        """Gather: one table's partial sums from its shards, merged.

        Whole-table pieces pass through untouched (bit-identical to the
        unsharded op).  Row-shard partials add in ascending shard order —
        deterministic, but a different float32 accumulation order than
        the unsharded sum, hence the documented "equal up to summation
        order" contract.
        """
        if len(pieces) == 1 and self.plan.placements[name].mapping is None:
            return pieces[0][1]
        values = np.zeros((n_bags, self.dims[name]), dtype=np.float32)
        breakdown = Breakdown()
        stats: Dict[str, float] = {}
        start = min((r.start_time for _, r in pieces), default=self.sim.now)
        end = max((r.end_time for _, r in pieces), default=self.sim.now)
        for _, result in pieces:
            values += result.values
            breakdown.merge(result.breakdown)
            for key, value in result.stats.items():
                stats[key] = stats.get(key, 0.0) + value
        stats["shards"] = float(len(pieces))
        return SlsOpResult(
            values=values,
            start_time=start,
            end_time=end,
            breakdown=breakdown,
            stats=stats,
        )

    def run_sync(
        self, bags_by_table: Dict[str, Sequence[np.ndarray]]
    ) -> EmbStageResult:
        box: List[EmbStageResult] = []
        self.start(bags_by_table, box.append)
        self.sim.run_until(lambda: bool(box))
        return box[0]
