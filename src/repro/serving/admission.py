"""QoS admission control: deadlines, quotas and priority lanes.

The seed serving layer sheds load one way: reject at the in-flight
limit.  Production recommendation tiers are SLO-centric (MicroRec's
tail-latency-goodput framing): a request that will blow its deadline is
worth *dropping early* so the device time it would have wasted serves a
request that can still make it, some tenants deserve a bounded share of
the admission slots, and latency-critical traffic should cut ahead of
batch traffic.  :class:`AdmissionConfig` declares those three policies;
:class:`~repro.serving.queue.RequestQueue`,
:class:`~repro.serving.scheduler.BatchScheduler` and
:class:`~repro.serving.server.InferenceServer` enforce them.

Terminal accounting (see :class:`~repro.serving.stats.ServingStats`):

* **rejected** — refused at submit (``capacity`` at the global in-flight
  limit, ``quota`` at a per-model quota, ``deadline`` when the request
  arrives already expired).
* **dropped** — admitted but shed before dispatch because its deadline
  passed while queued (reason ``deadline``).
* **goodput** — completed *within* its deadline; a late completion
  counts as completed but not as goodput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

__all__ = [
    "AdmissionConfig",
    "REASON_CAPACITY",
    "REASON_QUOTA",
    "REASON_DEADLINE",
]

# Canonical reject/drop reason strings (keys of ServingStats.*_by_reason).
REASON_CAPACITY = "capacity"
REASON_QUOTA = "quota"
REASON_DEADLINE = "deadline"


@dataclass(frozen=True)
class AdmissionConfig:
    """Declarative QoS policy for one :class:`InferenceServer`.

    ``slo_by_model`` maps model names to *relative* deadlines in
    simulated seconds: a submitted request without an explicit absolute
    deadline is stamped ``now + slo``.  ``deadline_drop`` enables early
    shedding: at dispatch time, queued requests whose deadline has
    already passed (plus ``drop_headroom_s``, an estimate of the
    unavoidable service time ahead of them) are dropped instead of
    dispatched.  ``quota_by_model`` caps each model's admitted-and-live
    requests (queued + dispatched) below the global in-flight limit.
    ``priority_by_model`` assigns lanes to priority classes: the
    scheduler serves the highest-priority class with queued work first
    and round-robins *within* a class, so equal-priority models keep the
    seed's fairness while latency-critical tenants cut ahead.
    """

    deadline_drop: bool = False
    drop_headroom_s: float = 0.0
    slo_by_model: Mapping[str, float] = field(default_factory=dict)
    quota_by_model: Mapping[str, int] = field(default_factory=dict)
    priority_by_model: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.drop_headroom_s < 0:
            raise ValueError("drop_headroom_s must be >= 0")
        for model, slo in self.slo_by_model.items():
            if slo <= 0:
                raise ValueError(f"SLO for {model!r} must be positive")
        for model, quota in self.quota_by_model.items():
            if quota < 1:
                raise ValueError(f"quota for {model!r} must be >= 1")

    # ------------------------------------------------------------------
    def slo_for(self, model: str) -> Optional[float]:
        return self.slo_by_model.get(model)

    def quota_for(self, model: str) -> Optional[int]:
        return self.quota_by_model.get(model)

    def priority_for(self, model: str) -> int:
        return self.priority_by_model.get(model, 0)

    @property
    def any_deadlines(self) -> bool:
        return self.deadline_drop or bool(self.slo_by_model)

    def describe(self) -> Dict[str, object]:
        """Compact knob dump for experiment/benchmark report rows."""
        return {
            "deadline_drop": self.deadline_drop,
            "drop_headroom_s": self.drop_headroom_s,
            "slo_by_model": dict(self.slo_by_model),
            "quota_by_model": dict(self.quota_by_model),
            "priority_by_model": dict(self.priority_by_model),
        }
