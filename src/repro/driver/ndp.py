"""Host-side NDP SLS session: the libflashrec analogue.

Pairs the config-write and result-read halves of an SLS operation,
allocating request ids within the SLBA codec's alignment window and
returning the device's result payload (accumulated vectors + the FTL
timing breakdown) to the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Set

import numpy as np

from ..core.config import SlsConfig
from ..core.engine import SlsResultPayload
from ..nvme.commands import NvmeCommand, Opcode, Status
from ..sim.stats import Breakdown
from .unvme import UnvmeDriver

__all__ = ["SlsTiming", "NdpSlsSession", "NdpError"]


class NdpError(RuntimeError):
    pass


@dataclass
class SlsTiming:
    """Host-observed timing of one SLS operation."""

    submit_time: float
    config_done_time: float
    result_time: float
    breakdown: Breakdown

    @property
    def total(self) -> float:
        return self.result_time - self.submit_time


SlsCallback = Callable[[SlsResultPayload, SlsTiming], None]


class NdpSlsSession:
    """Issues NDP SLS operations through a :class:`UnvmeDriver`."""

    def __init__(self, driver: UnvmeDriver):
        self.driver = driver
        self.codec = driver.device.codec
        self._next_rid = 1
        self._inflight_rids: Set[int] = set()
        self.ops_completed = 0

    # ------------------------------------------------------------------
    def _allocate_rid(self) -> int:
        for _ in range(self.codec.alignment):
            rid = self._next_rid
            self._next_rid = self._next_rid % (self.codec.alignment - 1) + 1
            if rid not in self._inflight_rids:
                self._inflight_rids.add(rid)
                return rid
        raise NdpError("no free request ids")

    # ------------------------------------------------------------------
    def sls(self, config: SlsConfig, on_done: SlsCallback) -> None:
        """Run one SLS op: config write, then result read when ready."""
        rid = self._allocate_rid()
        config.request_id = rid
        slba = self.codec.encode(config.table_base_lba, rid)
        submit_time = self.driver.sim.now
        config_nlb = self.driver.nlb_for_bytes(config.encoded_bytes)
        result_nlb = self.driver.nlb_for_bytes(config.result_bytes)
        # The result read is issued from the config write's completion
        # callback, where the tracer's span stack is empty — capture the
        # caller's span (the backend's sls_op) now so both command halves
        # parent under the same op.
        tracer = self.driver.sim.tracer
        op_span = tracer.current if tracer is not None else None

        def config_done(cpl) -> None:
            if not cpl.ok:
                self._inflight_rids.discard(rid)
                raise NdpError(f"SLS config write failed: {cpl.status}")
            tracer = self.driver.sim.tracer
            cmd = NvmeCommand(
                opcode=Opcode.READ, slba=slba, nlb=result_nlb, ndp=True
            )
            if tracer is not None and op_span is not None:
                tracer.push(op_span)
                try:
                    self.driver.submit(cmd, result_done)
                finally:
                    tracer.pop()
            else:
                self.driver.submit(cmd, result_done)

        config_done_time = {"t": 0.0}

        def config_done_wrapper(cpl) -> None:
            config_done_time["t"] = self.driver.sim.now
            config_done(cpl)

        def result_done(cpl) -> None:
            self._inflight_rids.discard(rid)
            if not cpl.ok or not isinstance(cpl.payload, SlsResultPayload):
                raise NdpError(f"SLS result read failed: {cpl.status}")
            self.ops_completed += 1
            timing = SlsTiming(
                submit_time=submit_time,
                config_done_time=config_done_time["t"],
                result_time=self.driver.sim.now,
                breakdown=cpl.payload.breakdown,
            )
            on_done(cpl.payload, timing)

        self.driver.submit(
            NvmeCommand(
                opcode=Opcode.WRITE,
                slba=slba,
                nlb=config_nlb,
                ndp=True,
                data=config,
            ),
            config_done_wrapper,
        )
