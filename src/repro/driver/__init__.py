"""Host user-space driver models (UNVMe analogue + NDP SLS session)."""

from .ndp import NdpError, NdpSlsSession, SlsTiming
from .sync import run_all, sync_read, sync_sls, sync_write
from .unvme import DriverConfig, UnvmeDriver

__all__ = [
    "NdpError",
    "NdpSlsSession",
    "SlsTiming",
    "run_all",
    "sync_read",
    "sync_sls",
    "sync_write",
    "DriverConfig",
    "UnvmeDriver",
]
