"""Synchronous wrappers: drive the simulator until an async op completes."""

from __future__ import annotations

from typing import Any, List, Optional

import numpy as np

from ..core.config import SlsConfig
from ..core.engine import SlsResultPayload
from ..nvme.commands import NvmeCompletion
from ..sim.kernel import Simulator
from .ndp import NdpSlsSession, SlsTiming
from .unvme import UnvmeDriver

__all__ = ["sync_read", "sync_write", "sync_sls", "run_all"]


def sync_read(sim: Simulator, driver: UnvmeDriver, slba: int, nlb: int) -> NvmeCompletion:
    box: List[NvmeCompletion] = []
    driver.read(slba, nlb, box.append)
    sim.run_until(lambda: bool(box))
    return box[0]


def sync_write(
    sim: Simulator, driver: UnvmeDriver, slba: int, nlb: int, data: np.ndarray
) -> NvmeCompletion:
    box: List[NvmeCompletion] = []
    driver.write(slba, nlb, data, box.append)
    sim.run_until(lambda: bool(box))
    return box[0]


def sync_sls(
    sim: Simulator, session: NdpSlsSession, config: SlsConfig
) -> tuple[SlsResultPayload, SlsTiming]:
    box: List[tuple[SlsResultPayload, SlsTiming]] = []
    session.sls(config, lambda payload, timing: box.append((payload, timing)))
    sim.run_until(lambda: bool(box))
    return box[0]


def run_all(sim: Simulator, boxes: List[list], expected: int) -> None:
    """Run until each box in ``boxes`` holds ``expected`` results."""
    sim.run_until(lambda: all(len(b) >= expected for b in boxes))
