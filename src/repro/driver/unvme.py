"""User-space polling NVMe driver model (Micron UNVMe analogue).

The paper's host stack uses UNVMe: a low-latency userspace library that
polls for completions and uses the maximum number of threads/command
queues.  We model per-command submission and completion-handling costs
and the queue-depth backpressure of the qpairs; polling pickup is
immediate (dedicated spinning threads).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional

import numpy as np

from ..nvme.commands import NvmeCommand, NvmeCompletion, Opcode
from ..nvme.queues import QueuePair
from ..sim.kernel import Simulator
from ..sim.stats import Accumulator
from ..sim.units import us
from ..ssd.device import SsdDevice

__all__ = ["DriverConfig", "UnvmeDriver"]

CompletionCallback = Callable[[NvmeCompletion], None]


@dataclass(frozen=True)
class DriverConfig:
    num_qpairs: int = 8
    queue_depth: int = 64
    submit_cost_s: float = us(3.0)
    complete_cost_s: float = us(2.0)

    def __post_init__(self) -> None:
        if self.num_qpairs < 1 or self.queue_depth < 1:
            raise ValueError("qpairs and depth must be >= 1")


class UnvmeDriver:
    """Round-robin submission across qpairs with depth backpressure."""

    def __init__(
        self,
        sim: Simulator,
        device: SsdDevice,
        config: Optional[DriverConfig] = None,
    ):
        self.sim = sim
        self.device = device
        self.config = config or DriverConfig()
        self._qpairs: List[QueuePair] = [
            device.create_qpair(self.config.queue_depth)
            for _ in range(self.config.num_qpairs)
        ]
        self._callbacks: Dict[int, tuple[CompletionCallback, QueuePair]] = {}
        self._backlog: Deque[tuple[NvmeCommand, CompletionCallback]] = deque()
        # Open ``nvme.cmd`` spans by cid (tracing only; empty otherwise).
        # Completion delivery only sees the cid, so the span handle has
        # to survive the submit -> deliver gap here.
        self._cmd_spans: Dict[int, object] = {}
        self._rr = 0
        for qp in self._qpairs:
            qp.cq.set_notify(self._on_cq_post)
        self.commands_issued = 0
        self.command_latency = Accumulator()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, cmd: NvmeCommand, on_done: CompletionCallback) -> None:
        """Issue ``cmd``; queues locally when every qpair is at full depth."""
        tracer = self.sim.tracer
        if tracer is not None:
            # Begins at submit, so driver-side backlog queueing is part
            # of the command's span; ends at completion delivery.  The
            # handle also rides on the command so the controller can
            # parent FTL work under it.
            span = tracer.begin(
                "nvme.cmd",
                opcode=cmd.opcode.name,
                cid=cmd.cid,
                slba=cmd.slba,
                nlb=cmd.nlb,
                ndp=cmd.ndp,
            )
            self._cmd_spans[cmd.cid] = span
            cmd.obs_span = span
        qp = self._pick_qpair()
        if qp is None:
            self._backlog.append((cmd, on_done))
            return
        self._issue(qp, cmd, on_done)

    def _pick_qpair(self) -> Optional[QueuePair]:
        # Round-robin scan starting where the last pick left off; same
        # selection sequence as the itertools.cycle original, without the
        # per-call iterator and property overhead on the hot path.
        qpairs = self._qpairs
        n = len(qpairs)
        rr = self._rr
        for k in range(n):
            idx = rr + k
            if idx >= n:
                idx -= n
            qp = qpairs[idx]
            if qp.can_submit:
                self._rr = idx + 1 if idx + 1 < n else 0
                return qp
        return None

    def _issue(self, qp: QueuePair, cmd: NvmeCommand, on_done: CompletionCallback) -> None:
        qp.outstanding += 1
        cmd.submit_time = self.sim.now
        self._callbacks[cmd.cid] = (on_done, qp)
        self.commands_issued += 1
        # Submission cost: build SQE + doorbell write from the host thread.
        self.sim.schedule(self.config.submit_cost_s, lambda: qp.sq.push(cmd))

    # ------------------------------------------------------------------
    # Completion (polling)
    # ------------------------------------------------------------------
    def _on_cq_post(self, qid: int) -> None:
        qp = self._qpairs[qid - 1]
        cpl = qp.cq.poll()
        if cpl is None:
            return
        self.sim.schedule(
            self.config.complete_cost_s, lambda: self._deliver(qp, cpl)
        )

    def _deliver(self, qp: QueuePair, cpl: NvmeCompletion) -> None:
        qp.outstanding -= 1
        entry = self._callbacks.pop(cpl.cid, None)
        tracer = self.sim.tracer
        if tracer is not None:
            span = self._cmd_spans.pop(cpl.cid, None)
            if span is not None:
                span.attrs["status"] = cpl.status.name
                tracer.end(span)
        self._drain_backlog()
        if entry is None:
            raise RuntimeError(f"completion for unknown cid {cpl.cid}")
        on_done, _qp = entry
        on_done(cpl)

    def _drain_backlog(self) -> None:
        while self._backlog:
            qp = self._pick_qpair()
            if qp is None:
                return
            cmd, on_done = self._backlog.popleft()
            self._issue(qp, cmd, on_done)

    # ------------------------------------------------------------------
    # Convenience IO
    # ------------------------------------------------------------------
    def read(self, slba: int, nlb: int, on_done: CompletionCallback) -> None:
        self.submit(NvmeCommand(opcode=Opcode.READ, slba=slba, nlb=nlb), on_done)

    def write(
        self, slba: int, nlb: int, data: np.ndarray, on_done: CompletionCallback
    ) -> None:
        self.submit(
            NvmeCommand(opcode=Opcode.WRITE, slba=slba, nlb=nlb, data=data), on_done
        )

    def trim(self, slba: int, nlb: int, on_done: CompletionCallback) -> None:
        """Deallocate an LBA range (TRIM)."""
        self.submit(NvmeCommand(opcode=Opcode.DSM, slba=slba, nlb=nlb), on_done)

    @property
    def outstanding(self) -> int:
        return sum(qp.outstanding for qp in self._qpairs) + len(self._backlog)

    @property
    def lba_bytes(self) -> int:
        return self.device.ftl.config.lba_bytes

    def nlb_for_bytes(self, nbytes: int) -> int:
        return max(1, -(-nbytes // self.lba_bytes))
