"""Host system assembly: simulator + host CPU + SSD + driver + NDP session."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..driver.ndp import NdpSlsSession
from ..driver.unvme import DriverConfig, UnvmeDriver
from ..sim.kernel import Simulator
from ..ssd.device import SsdConfig, SsdDevice
from ..ssd.presets import cosmos_plus_config
from .cpu import HostCpu, HostCpuConfig

__all__ = ["SystemConfig", "System", "build_system"]


@dataclass(frozen=True)
class SystemConfig:
    host_cpu: HostCpuConfig = field(default_factory=HostCpuConfig)
    driver: DriverConfig = field(default_factory=DriverConfig)
    # Host-side admission limit: how many inference requests the serving
    # layer (repro.serving) keeps in flight (queued + dispatched) before
    # rejecting new arrivals.  Per system, across all models.
    max_inflight_requests: int = 64

    def __post_init__(self) -> None:
        if self.max_inflight_requests < 1:
            raise ValueError("max_inflight_requests must be >= 1")


class System:
    """Everything one experiment instance needs, sharing one simulator.

    A system always has a primary SSD (``device``/``driver``/
    ``ndp_session``); additional devices can be attached with
    :meth:`add_device` for multi-SSD scale-out experiments (the paper's
    prototype was single-SSD; Section 5 flags this as the limitation).
    """

    def __init__(
        self,
        ssd_config: SsdConfig,
        system_config: Optional[SystemConfig] = None,
        sim: Optional[Simulator] = None,
    ):
        self.sim = sim or Simulator()
        self.config = system_config or SystemConfig()
        self.host_cpu = HostCpu(self.config.host_cpu)
        self.devices: list[SsdDevice] = []
        self._drivers: dict[int, UnvmeDriver] = {}
        self._sessions: dict[int, NdpSlsSession] = {}
        self.device = self.add_device(ssd_config)

    # ------------------------------------------------------------------
    def add_device(self, ssd_config: SsdConfig) -> SsdDevice:
        """Attach another SSD (own driver + NDP session) to this host."""
        device = SsdDevice(self.sim, ssd_config)
        driver = UnvmeDriver(self.sim, device, self.config.driver)
        self.devices.append(device)
        self._drivers[id(device)] = driver
        self._sessions[id(device)] = NdpSlsSession(driver)
        return device

    def driver_for(self, device: SsdDevice) -> UnvmeDriver:
        return self._drivers[id(device)]

    def session_for(self, device: SsdDevice) -> NdpSlsSession:
        return self._sessions[id(device)]

    @property
    def driver(self) -> UnvmeDriver:
        return self._drivers[id(self.device)]

    @property
    def ndp_session(self) -> NdpSlsSession:
        return self._sessions[id(self.device)]

    def run_until(self, predicate, limit: float = float("inf")) -> float:
        return self.sim.run_until(predicate, limit)

    @property
    def now(self) -> float:
        return self.sim.now


def build_system(
    min_capacity_pages: int = 1 << 20,
    page_cache_pages: int = 4096,
    ndp=None,
    system_config: Optional[SystemConfig] = None,
    sim: Optional[Simulator] = None,
) -> System:
    """Convenience factory: a Cosmos+-like device plus default host.

    ``sim`` shares an existing simulator — multiple systems on one kernel
    is how :mod:`repro.cluster` runs N hosts in a single simulated fleet.
    """
    ssd_config = cosmos_plus_config(
        min_capacity_pages=min_capacity_pages,
        page_cache_pages=page_cache_pages,
        ndp=ndp,
    )
    return System(ssd_config, system_config, sim=sim)
