"""Host-side models: CPU cost model and full-system assembly."""

from .cpu import HostCpu, HostCpuConfig
from .system import System, SystemConfig, build_system

__all__ = ["HostCpu", "HostCpuConfig", "System", "SystemConfig", "build_system"]
