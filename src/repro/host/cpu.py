"""Host CPU cost model.

The paper's host is a quad-core Intel Skylake desktop running Caffe2.
Operator latencies are modelled analytically: GEMMs at class-dependent
effective GFLOP/s (large blocked GEMMs vs small/skinny framework-bound
ones vs recurrent cells), memory-bound ops at stream bandwidth, and
SparseLengthsSum gathers at the ~1GB/s effective random-access rate the
paper quotes for DRAM embedding reads.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.units import GB_S, ns, us

__all__ = ["HostCpuConfig", "HostCpu"]


@dataclass(frozen=True)
class HostCpuConfig:
    gemm_gflops_large: float = 40.0
    gemm_gflops_small: float = 8.0
    gemm_small_flops: float = 20.0e6    # per-call FLOPs below which "small"
    gru_gflops: float = 2.0             # per-step recurrent cells
    mem_bw_bytes_s: float = GB_S(20.0)
    random_access_bytes_s: float = GB_S(1.0)   # DRAM SLS gather rate (paper)
    op_overhead_s: float = us(2.0)
    sls_per_lookup_s: float = ns(40.0)   # index arithmetic per lookup
    accumulate_bytes_s: float = GB_S(8.0)  # host-side vector accumulate


class HostCpu:
    """Analytic operator timing on the host."""

    def __init__(self, config: HostCpuConfig | None = None):
        self.config = config or HostCpuConfig()

    # ------------------------------------------------------------------
    def gemm_time(self, m: int, n: int, k: int) -> float:
        flops = 2.0 * m * n * k
        if flops < self.config.gemm_small_flops:
            rate = self.config.gemm_gflops_small
        else:
            rate = self.config.gemm_gflops_large
        return self.config.op_overhead_s + flops / (rate * 1e9)

    def mlp_time(self, batch: int, dims: list[int]) -> float:
        """Sequential dense layers ``dims[0] -> dims[1] -> ...``."""
        total = 0.0
        for d_in, d_out in zip(dims, dims[1:]):
            total += self.gemm_time(batch, d_out, d_in)
        return total

    def gru_time(self, batch: int, seq_len: int, hidden: int, input_dim: int) -> float:
        """Per-step GRU cells (3 gates, input + recurrent GEMMs per step)."""
        flops_per_step = 2.0 * 3.0 * batch * hidden * (hidden + input_dim)
        total = seq_len * (
            self.config.op_overhead_s + flops_per_step / (self.config.gru_gflops * 1e9)
        )
        return total

    def elementwise_time(self, n_bytes: int) -> float:
        return self.config.op_overhead_s + n_bytes / self.config.mem_bw_bytes_s

    # ------------------------------------------------------------------
    def dram_sls_time(self, n_lookups: int, row_bytes: int) -> float:
        """An in-DRAM SparseLengthsSum (the Caffe2 operator)."""
        gather = (n_lookups * row_bytes) / self.config.random_access_bytes_s
        index_work = n_lookups * self.config.sls_per_lookup_s
        return self.config.op_overhead_s + gather + index_work

    def accumulate_time(self, n_vectors: int, row_bytes: int) -> float:
        """Host-side accumulation of fetched vectors into results."""
        return (n_vectors * row_bytes) / self.config.accumulate_bytes_s
