"""Trace analytics: reuse distributions, stack distances, cache sweeps."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..embedding.caches import SetAssociativeLru

__all__ = [
    "unique_fraction",
    "rows_to_pages",
    "row_frequencies",
    "reuse_cdf",
    "lru_page_hit_rate",
    "stack_distances",
    "interarrival_stats",
]


def unique_fraction(trace: np.ndarray) -> float:
    trace = np.asarray(trace)
    if trace.size == 0:
        return 0.0
    return float(np.unique(trace).size) / trace.size


def rows_to_pages(trace: np.ndarray, row_bytes: int, page_bytes: int) -> np.ndarray:
    """Map a row-id trace to page ids at a given page granularity."""
    if page_bytes < row_bytes:
        raise ValueError("page must be at least one row")
    rows_per_page = page_bytes // row_bytes
    return np.asarray(trace, dtype=np.int64) // rows_per_page


def row_frequencies(trace: np.ndarray, num_rows: int) -> np.ndarray:
    """Per-row access counts over ``[0, num_rows)`` — the heat histogram
    frequency-based layout packs by (:mod:`repro.embedding.placement`)."""
    trace = np.asarray(trace, dtype=np.int64).reshape(-1)
    if trace.size and (trace.min() < 0 or trace.max() >= num_rows):
        raise ValueError("row id out of range for frequency histogram")
    return np.bincount(trace, minlength=num_rows).astype(np.float64)


def reuse_cdf(page_trace: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Figure 3's curve: cumulative hit share vs pages (ascending hit count).

    Returns ``(pages_fraction, cumulative_hits_fraction)`` where index i
    covers the i+1 least-hit pages.  Edge cases are exact, not
    accidental: an empty trace yields two empty arrays (no 0/0), and a
    single-element trace yields ``([1.0], [1.0])`` — one page carrying
    all hits.
    """
    page_trace = np.asarray(page_trace, dtype=np.int64)
    if page_trace.size == 0:
        return np.zeros(0), np.zeros(0)
    _ids, counts = np.unique(page_trace, return_counts=True)
    counts = np.sort(counts)
    cum = np.cumsum(counts, dtype=np.float64)
    pages_fraction = np.arange(1, counts.size + 1, dtype=np.float64) / counts.size
    return pages_fraction, cum / cum[-1]


def lru_page_hit_rate(
    page_trace: np.ndarray, capacity_pages: int, ways: int = 16
) -> float:
    """Hit rate of a ``ways``-way LRU page cache over a page-id trace (Fig 4).

    Replays the trace on a real :class:`SetAssociativeLru` and reports
    the cache's own hit/miss counters, so this function agrees with the
    serving cache by construction for any (capacity, ways) — including
    capacities that are not a multiple of ``ways`` (the cache rounds its
    set count up rather than silently shrinking).
    """
    cache = SetAssociativeLru(capacity_pages, ways=ways)
    marker = np.zeros(0)  # cached payloads are irrelevant here
    trace = np.asarray(page_trace, dtype=np.int64)
    if trace.size == 0:
        return 0.0
    for page in trace:
        if cache.lookup(int(page)) is None:
            cache.insert(int(page), marker)
    assert cache.hits + cache.misses == trace.size
    return cache.hits / trace.size


def interarrival_stats(times: Sequence[float]) -> Dict[str, float]:
    """Arrival-process shape of a timestamp trace.

    Returns mean offered rate and the coefficient of variation of the
    inter-arrival gaps — the statistic that separates arrival models: a
    Poisson open loop has CV ~= 1, a deterministic (uniform) open loop
    CV = 0, and a closed-loop client population self-throttles to
    sub-exponential variability.  Used by the ``qos`` experiment to
    label the load it generated (:mod:`repro.workload`).
    """
    arr = np.asarray(times, dtype=np.float64)
    if arr.size < 2:
        return {"n": float(arr.size), "rate": 0.0, "cv": 0.0}
    gaps = np.diff(np.sort(arr))
    mean = float(gaps.mean())
    if mean <= 0:
        return {"n": float(arr.size), "rate": 0.0, "cv": 0.0}
    return {
        "n": float(arr.size),
        "rate": 1.0 / mean,
        "cv": float(gaps.std() / mean),
    }


def stack_distances(trace: Sequence[int]) -> List[int]:
    """LRU stack distance per access; -1 marks first touches.

    Empty traces yield ``[]`` and a single access yields ``[-1]`` — the
    first touch of its item, never an index into an empty stack.
    """
    stack: List[int] = []
    out: List[int] = []
    for item in trace:
        item = int(item)
        try:
            d = stack.index(item)
        except ValueError:
            out.append(-1)
            stack.insert(0, item)
            continue
        out.append(d)
        stack.pop(d)
        stack.insert(0, item)
    return out
