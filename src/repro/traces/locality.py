"""Stack-distance locality trace generator (the DLRM generator analogue).

The paper instruments DLRM's synthetic trace generator with stack-distance
likelihoods: an exponential distribution parameterized by ``K`` decides
whether each lookup re-references a recently used embedding (short stack
distance) or touches a fresh row.  K = 0, 1, 2 produce traces with 13%,
54%, 72% unique accesses respectively (Section 5), which in turn yield
the 84%/44%/28% host-LRU hit rates quoted in Figure 10.

Fresh rows are drawn as a hashed sequence spread across the table (so
one-vector-per-page tables see distinct pages), making the "used ID
space" grow with trace length exactly as a production trace would.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

__all__ = ["unique_fraction_for_k", "LocalityTraceGenerator"]

# q(K): probability a lookup is a *fresh* row.  Fit to the paper's
# 13%/54%/72% unique fractions at K = 0, 1, 2.
_Q_BASE = 0.87
_Q_RATE = 0.637

# Base spread multiplier (Knuth's golden-ratio constant).  It is odd, so it
# permutes any power-of-two row space; for other table sizes the generator
# nudges it until it is coprime with the size.  (A Mersenne-style constant
# like 2**31 - 1 would be hazardous: it is ≡ -1 mod 2**k, which turns the
# "hashed" enumeration into consecutive descending rows.)
_SPREAD_MULT = 2_654_435_761


def unique_fraction_for_k(k: float) -> float:
    """Target fraction of first-touch accesses for locality parameter K."""
    if k < 0:
        raise ValueError("K must be >= 0")
    return 1.0 - _Q_BASE * math.exp(-_Q_RATE * k)


class LocalityTraceGenerator:
    """Generates per-table row-id streams with tunable temporal locality."""

    def __init__(
        self,
        table_rows: int,
        k: float,
        seed: int = 0,
        stack_scale: float = 96.0,
        stack_window: int = 4096,
        universe: Optional[int] = None,
    ):
        """``universe`` bounds the pool fresh draws come from.

        ``None`` (default) makes every fresh draw a never-seen row (a hashed
        enumeration of the table), so the measured unique fraction matches
        the paper's 13%/54%/72% calibration exactly.  A bounded universe
        (e.g. 8192) models a production table whose active ID set is much
        smaller than the table — the regime where the paper's 2K-entry
        static partition asymptotically serves ~25% of accesses.
        """
        if table_rows < 1:
            raise ValueError("table_rows must be >= 1")
        if stack_scale <= 0 or stack_window < 1:
            raise ValueError("stack parameters must be positive")
        if universe is not None and not 1 <= universe <= table_rows:
            raise ValueError("universe must be in [1, table_rows]")
        self.table_rows = table_rows
        self.k = k
        self.q_unique = unique_fraction_for_k(k)
        # Higher K -> repeats reach deeper into the stack (exponential scale).
        self.stack_scale = stack_scale * (1.0 + k)
        self.stack_window = stack_window
        self.universe = universe
        self._rng = np.random.default_rng(seed)
        self._stack: List[int] = []   # most recent first, bounded
        self._fresh_counter = 0
        offset_rng = np.random.default_rng(seed ^ 0x5EED)
        self._offset = int(offset_rng.integers(0, table_rows))
        self._spread = _SPREAD_MULT
        while math.gcd(self._spread, table_rows) != 1:
            self._spread += 2

    # ------------------------------------------------------------------
    def _fresh_row(self) -> int:
        if self.universe is None:
            index = self._fresh_counter
        else:
            index = int(self._rng.integers(0, self.universe))
        self._fresh_counter += 1
        row = (index * self._spread + self._offset) % self.table_rows
        return int(row)

    def next_row(self) -> int:
        stack = self._stack
        if stack and self._rng.random() >= self.q_unique:
            # Re-reference: exponential stack distance, clipped to the stack.
            d = int(self._rng.exponential(self.stack_scale))
            if d < len(stack):
                row = stack.pop(d)
                stack.insert(0, row)
                return row
        row = self._fresh_row()
        stack.insert(0, row)
        if len(stack) > self.stack_window:
            stack.pop()
        return row

    # ------------------------------------------------------------------
    def generate(self, n_lookups: int) -> np.ndarray:
        """A flat stream of ``n_lookups`` row ids."""
        out = np.empty(n_lookups, dtype=np.int64)
        for i in range(n_lookups):
            out[i] = self.next_row()
        return out

    def generate_bags(
        self, n_samples: int, lookups_per_sample: int
    ) -> List[np.ndarray]:
        """Per-sample bags (the SparseLengthsSum input layout)."""
        flat = self.generate(n_samples * lookups_per_sample)
        return [
            flat[i * lookups_per_sample : (i + 1) * lookups_per_sample]
            for i in range(n_samples)
        ]

    def generate_batches(
        self, n_batches: int, batch_size: int, lookups_per_sample: int
    ) -> List[List[np.ndarray]]:
        return [
            self.generate_bags(batch_size, lookups_per_sample)
            for _ in range(n_batches)
        ]

    @property
    def unique_rows_seen(self) -> int:
        return self._fresh_counter
