"""Power-law (Zipf) popularity traces.

The paper's production characterization (Figs 3-4) shows embedding-table
accesses following a power law, with per-table skews that vary widely.
Those figures use proprietary traces; we regenerate their *shape* from
Zipf-distributed synthetic traces with per-table exponents.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["ZipfTraceGenerator"]


class ZipfTraceGenerator:
    """Samples row ids with popularity rank ``r`` proportional to r^-alpha."""

    def __init__(self, table_rows: int, alpha: float, seed: int = 0):
        if table_rows < 1:
            raise ValueError("table_rows must be >= 1")
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.table_rows = table_rows
        self.alpha = alpha
        self._rng = np.random.default_rng(seed)
        ranks = np.arange(1, table_rows + 1, dtype=np.float64)
        weights = ranks ** (-alpha)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        # Permute ranks onto rows so popular rows are scattered over pages.
        self._perm = np.random.default_rng(seed ^ 0xABCD).permutation(table_rows)

    def generate(self, n_lookups: int) -> np.ndarray:
        u = self._rng.random(n_lookups)
        ranks = np.searchsorted(self._cdf, u, side="left")
        return self._perm[np.clip(ranks, 0, self.table_rows - 1)].astype(np.int64)

    def generate_bags(self, n_samples: int, lookups_per_sample: int) -> List[np.ndarray]:
        flat = self.generate(n_samples * lookups_per_sample)
        return [
            flat[i * lookups_per_sample : (i + 1) * lookups_per_sample]
            for i in range(n_samples)
        ]
