"""Synthetic input traces: locality-parameterized and power-law generators."""

from .analysis import (
    lru_page_hit_rate,
    reuse_cdf,
    rows_to_pages,
    stack_distances,
    unique_fraction,
)
from .locality import LocalityTraceGenerator, unique_fraction_for_k
from .powerlaw import ZipfTraceGenerator

__all__ = [
    "lru_page_hit_rate",
    "reuse_cdf",
    "rows_to_pages",
    "stack_distances",
    "unique_fraction",
    "LocalityTraceGenerator",
    "unique_fraction_for_k",
    "ZipfTraceGenerator",
]
