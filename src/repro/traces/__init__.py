"""Synthetic input traces: locality/power-law generators + analytics.

The generators reproduce the paper's trace *shapes* (Fig 3 power-law
popularity, Fig 4 stack-distance locality); the :mod:`.analysis`
helpers measure traces — synthetic or recorded — and every public
helper is re-exported here.  :mod:`repro.workload` feeds these
generators through the serving layer as per-table id samplers, so the
same Fig 3/4-shaped streams that drive the cache studies also drive
end-to-end serving runs.
"""

from .analysis import (
    interarrival_stats,
    lru_page_hit_rate,
    reuse_cdf,
    rows_to_pages,
    stack_distances,
    unique_fraction,
)
from .locality import LocalityTraceGenerator, unique_fraction_for_k
from .powerlaw import ZipfTraceGenerator

__all__ = [
    "interarrival_stats",
    "lru_page_hit_rate",
    "reuse_cdf",
    "rows_to_pages",
    "stack_distances",
    "unique_fraction",
    "LocalityTraceGenerator",
    "unique_fraction_for_k",
    "ZipfTraceGenerator",
]
