"""Static wear leveling.

When the erase-count spread across blocks exceeds a threshold, the
coldest closed block (fewest erases, holding static data) is migrated so
its block rejoins the allocation pool and absorbs future program/erase
cycles.  This is the classic static wear-leveling scheme used by simple
FTLs such as the Cosmos+ greedy FTL.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .ftl import GreedyFtl

__all__ = ["WearLeveler"]


class WearLeveler:
    def __init__(self, ftl: "GreedyFtl", threshold: int = 64):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.ftl = ftl
        self.threshold = threshold
        self.migrations = 0
        self.moves_aborted = 0
        self.checks = 0
        self._busy = False

    def reset_stats(self) -> None:
        """Clear the wear gauges benchmarks read (not migration state)."""
        self.migrations = 0
        self.moves_aborted = 0
        self.checks = 0

    # ------------------------------------------------------------------
    def check(self) -> None:
        """Trigger a migration if the wear spread exceeds the threshold."""
        self.checks += 1
        if self._busy:
            return
        # Don't start a migration when free space is tight: foreground GC
        # has priority on the remaining blocks.
        if self.ftl.blocks.total_free_blocks < self.ftl.geometry.dies:
            return
        victim = self._select_cold_block()
        if victim is None:
            return
        self._busy = True
        self._migrate(victim)

    def _select_cold_block(self) -> Optional[int]:
        blocks = self.ftl.blocks
        if blocks.wear_spread() <= self.threshold:
            return None
        closed = [
            b
            for b in blocks.closed_blocks()
            if b not in self.ftl.migrating_blocks and self.ftl.block_erasable(b)
        ]
        if not closed:
            return None
        coldest = min(closed, key=lambda b: int(blocks.erase_counts[b]))
        hottest = int(blocks.erase_counts.max())
        if hottest - int(blocks.erase_counts[coldest]) <= self.threshold:
            return None
        return coldest

    # ------------------------------------------------------------------
    def _migrate(self, victim: int) -> None:
        ftl = self.ftl
        ftl.migrating_blocks.add(victim)
        lpns = ftl.mapping.valid_lpns_in_block(victim)
        remaining = len(lpns)

        def finish_block() -> None:
            def after_erase() -> None:
                ftl.migrating_blocks.discard(victim)
                ftl.blocks.release_block(victim)
                self.migrations += 1
                self._busy = False
                ftl.notify_blocks_released()

            ftl.flash.erase(victim, after_erase)

        if remaining == 0:
            finish_block()
            return

        def move_done() -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                finish_block()

        for lpn in lpns:
            self._move_page(lpn, move_done)

    def _move_page(self, lpn: int, on_done) -> None:
        ftl = self.ftl
        old_ppn = ftl.mapping.lookup(lpn)

        def stale() -> bool:
            # Same mid-migration rewrite race as GC page moves: abort as
            # soon as the lpn no longer points at the page we copied.
            return ftl.mapping.lookup(lpn) != old_ppn

        def after_read(content) -> None:
            if stale():
                self.moves_aborted += 1
                on_done()
                return
            ftl.cpu.ftl_core.submit(
                ftl.cpu.costs.gc_page_move_s, lambda: after_cpu(content), priority=2
            )

        def after_cpu(content) -> None:
            from .blocks import OutOfSpaceError

            if stale():
                self.moves_aborted += 1
                on_done()
                return
            # Background service: stay above the per-die GC reserve when
            # possible; a mid-migration squeeze may dip into it (the erase
            # at the end of this migration returns a block immediately).
            try:
                new_ppn = ftl.blocks.allocate_page(reserve=1)
            except OutOfSpaceError:
                new_ppn = ftl.blocks.allocate_page()

            def after_program() -> None:
                if stale():
                    self.moves_aborted += 1
                else:
                    ftl.mapping.map(lpn, new_ppn)
                on_done()

            ftl.program_page(new_ppn, content, after_program)

        ftl.flash.read(old_ppn, after_read)
