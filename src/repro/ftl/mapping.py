"""Logical-to-physical page mapping with validity tracking.

The FTL maps logical page numbers (LPNs) to physical page numbers (PPNs).
A remap invalidates the previous physical page; per-block valid-page counts
feed garbage-collection victim selection.
"""

from __future__ import annotations

import numpy as np

from ..flash.geometry import FlashGeometry

__all__ = ["MappingTable", "UNMAPPED"]

UNMAPPED = -1


class MappingTable:
    """Dense L2P / P2L arrays plus per-block valid-page counters."""

    def __init__(self, geometry: FlashGeometry, logical_pages: int):
        if logical_pages < 1:
            raise ValueError("logical_pages must be >= 1")
        if logical_pages > geometry.total_pages:
            raise ValueError(
                f"logical space ({logical_pages} pages) exceeds physical "
                f"({geometry.total_pages} pages)"
            )
        self.geometry = geometry
        self.logical_pages = logical_pages
        self._l2p = np.full(logical_pages, UNMAPPED, dtype=np.int64)
        self._p2l = np.full(geometry.total_pages, UNMAPPED, dtype=np.int64)
        self._valid_per_block = np.zeros(geometry.total_blocks, dtype=np.int32)

    # ------------------------------------------------------------------
    def lookup(self, lpn: int) -> int:
        """Return PPN for ``lpn`` or ``UNMAPPED``."""
        return int(self._l2p[lpn])

    def lookup_many(self, lpns: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`lookup`: PPN (or ``UNMAPPED``) per LPN."""
        return self._l2p[np.asarray(lpns, dtype=np.int64)]

    def reverse(self, ppn: int) -> int:
        """Return LPN mapped to ``ppn`` or ``UNMAPPED``."""
        return int(self._p2l[ppn])

    def is_mapped(self, lpn: int) -> bool:
        return self._l2p[lpn] != UNMAPPED

    def map(self, lpn: int, ppn: int) -> int:
        """Map ``lpn`` -> ``ppn``; returns the invalidated old PPN (or UNMAPPED)."""
        if not 0 <= lpn < self.logical_pages:
            raise IndexError(f"lpn {lpn} out of range")
        if not 0 <= ppn < self.geometry.total_pages:
            raise IndexError(f"ppn {ppn} out of range")
        if self._p2l[ppn] != UNMAPPED:
            raise ValueError(f"ppn {ppn} already holds lpn {self._p2l[ppn]}")
        old_ppn = int(self._l2p[lpn])
        if old_ppn != UNMAPPED:
            self._invalidate_ppn(old_ppn)
        self._l2p[lpn] = ppn
        self._p2l[ppn] = lpn
        self._valid_per_block[ppn // self.geometry.pages_per_block] += 1
        return old_ppn

    def unmap(self, lpn: int) -> int:
        """Drop the mapping for ``lpn`` (trim); returns old PPN."""
        old_ppn = int(self._l2p[lpn])
        if old_ppn != UNMAPPED:
            self._invalidate_ppn(old_ppn)
            self._l2p[lpn] = UNMAPPED
        return old_ppn

    def bulk_map(self, lpn_start: int, ppns: np.ndarray) -> np.ndarray:
        """Vectorized mapping of consecutive LPNs onto ``ppns`` (preload)."""
        ppns = np.asarray(ppns, dtype=np.int64)
        return self.bulk_map_pairs(
            np.arange(lpn_start, lpn_start + ppns.size, dtype=np.int64), ppns
        )

    def bulk_map_pairs(self, lpns: np.ndarray, ppns: np.ndarray) -> np.ndarray:
        """Vectorized mapping of (lpn, ppn) pairs; last write wins.

        Target PPNs must be unmapped (they are freshly allocated pages),
        but target LPNs may already be mapped — their old physical pages
        are invalidated exactly as :meth:`map` would.  Duplicate LPNs
        within one batch take the *last* pair, mirroring the sequential
        semantics of issuing :meth:`map` per pair; the physical pages the
        earlier duplicates would have occupied are dead on arrival.

        Returns the sorted array of invalidated PPNs (previous mappings
        of remapped LPNs plus dead intra-batch duplicates), the bulk
        analogue of :meth:`map`'s old-PPN return.
        """
        lpns = np.asarray(lpns, dtype=np.int64)
        ppns = np.asarray(ppns, dtype=np.int64)
        if lpns.size != ppns.size:
            raise ValueError("lpns/ppns length mismatch")
        if lpns.size == 0:
            return np.zeros(0, dtype=np.int64)
        if lpns.min() < 0 or lpns.max() >= self.logical_pages:
            raise IndexError("bulk_map lpn range out of bounds")
        if ppns.min() < 0 or ppns.max() >= self.geometry.total_pages:
            raise IndexError("bulk_map ppn out of bounds")
        if np.unique(ppns).size != ppns.size:
            raise ValueError("bulk_map duplicate target ppns in batch")
        if np.any(self._p2l[ppns] != UNMAPPED):
            raise ValueError("bulk_map target ppns already mapped")
        # Last write wins: keep the final occurrence of each LPN.  The
        # first index into the reversed array is the last index into the
        # original one.
        rev_first = np.unique(lpns[::-1], return_index=True)[1]
        winner_idx = np.sort(lpns.size - 1 - rev_first)
        win_lpns = lpns[winner_idx]
        win_ppns = ppns[winner_idx]
        # PPNs of losing duplicates never become valid.
        dead_mask = np.ones(lpns.size, dtype=bool)
        dead_mask[winner_idx] = False
        dead_ppns = ppns[dead_mask]
        # Invalidate prior mappings of remapped LPNs (same as map()).
        old_ppns = self._l2p[win_lpns]
        old_mapped = old_ppns[old_ppns != UNMAPPED]
        if old_mapped.size:
            self._p2l[old_mapped] = UNMAPPED
            blocks = old_mapped // self.geometry.pages_per_block
            np.add.at(self._valid_per_block, blocks, -1)
            if np.any(self._valid_per_block[blocks] < 0):
                raise AssertionError("valid count underflow in bulk_map_pairs")
        self._l2p[win_lpns] = win_ppns
        self._p2l[win_ppns] = win_lpns
        np.add.at(
            self._valid_per_block,
            win_ppns // self.geometry.pages_per_block,
            1,
        )
        return np.sort(np.concatenate([old_mapped, dead_ppns]))

    def _invalidate_ppn(self, ppn: int) -> None:
        self._p2l[ppn] = UNMAPPED
        block = ppn // self.geometry.pages_per_block
        self._valid_per_block[block] -= 1
        if self._valid_per_block[block] < 0:
            raise AssertionError(f"valid count underflow in block {block}")

    # ------------------------------------------------------------------
    def valid_pages_in_block(self, block_id: int) -> int:
        return int(self._valid_per_block[block_id])

    def valid_lpns_in_block(self, block_id: int) -> list[int]:
        first = self.geometry.first_ppn_of_block(block_id)
        pages = self.geometry.pages_per_block
        lpns = self._p2l[first : first + pages]
        return [int(l) for l in lpns if l != UNMAPPED]

    def min_valid_block(self, candidates: list[int]) -> int:
        """Victim selection: candidate block with fewest valid pages."""
        if not candidates:
            raise ValueError("no candidate blocks")
        best = candidates[0]
        best_valid = self._valid_per_block[best]
        for block_id in candidates[1:]:
            valid = self._valid_per_block[block_id]
            if valid < best_valid:
                best, best_valid = block_id, valid
        return int(best)

    @property
    def mapped_count(self) -> int:
        return int(np.count_nonzero(self._l2p != UNMAPPED))

    def check_consistency(self) -> None:
        """Validate L2P/P2L inverse relationship and counters (test hook)."""
        mapped = np.flatnonzero(self._l2p != UNMAPPED)
        for lpn in mapped:
            ppn = self._l2p[lpn]
            if self._p2l[ppn] != lpn:
                raise AssertionError(f"l2p/p2l mismatch at lpn={lpn} ppn={ppn}")
        valid = np.flatnonzero(self._p2l != UNMAPPED)
        counts = np.zeros_like(self._valid_per_block)
        for ppn in valid:
            counts[ppn // self.geometry.pages_per_block] += 1
        if not np.array_equal(counts, self._valid_per_block):
            raise AssertionError("per-block valid counts inconsistent")
