"""Embedded-CPU cost model for the SSD firmware.

The Cosmos+ board runs the FTL on a dual-core 1GHz ARM Cortex-A9.  We
model the two cores the way the RecSSD firmware uses them:

* ``host_core`` — NVMe host-interface work: command fetch, DMA descriptor
  management, completion posting.
* ``ftl_core``  — FTL work proper: mapping, page scheduling, and for
  RecSSD the SLS config processing and translation (vector accumulation).

Both are single-server FIFO stations, so firmware work serializes exactly
as it does on the prototype — this contention is what produces the
baseline's ~10K IOPS command-bound random-read ceiling and the
"Translation is roughly half of FTL time" behaviour in Fig 8.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.kernel import Simulator
from ..sim.resources import Server
from ..sim.units import us

__all__ = ["FtlCpuCosts", "FtlCpu"]


@dataclass(frozen=True)
class FtlCpuCosts:
    """Firmware path costs in seconds (defaults calibrated to the paper)."""

    # Conventional IO path
    cmd_fetch_s: float = us(6.0)           # host_core: SQ fetch + parse
    cmd_complete_s: float = us(5.0)        # host_core: CQ post + doorbell
    dma_setup_s: float = us(4.0)           # host_core: per data DMA descriptor
    io_miss_s: float = us(70.0)            # ftl_core: map+schedule+track (flash path)
    io_hit_s: float = us(16.0)             # ftl_core: page-cache hit fast path
    io_extra_page_s: float = us(5.0)       # ftl_core: each additional page of a
                                           # multi-page command (map + queue fill)
    write_accept_s: float = us(25.0)       # ftl_core: write buffering + map update
    gc_page_move_s: float = us(40.0)       # ftl_core: per valid page migrated

    # RecSSD NDP path (Section 4.1)
    sls_entry_alloc_s: float = us(15.0)    # allocate + init SLS request entry
    sls_pair_s: float = us(2.0)            # config processing per (id, result) pair
    sls_page_sched_s: float = us(3.0)      # feed one page request to scheduler
    sls_translate_fixed_s: float = us(8.0)   # per returned flash page
    sls_translate_byte_s: float = 0.03e-6  # per accumulated embedding byte
    sls_cache_hit_vec_s: float = us(6.0)   # accumulate one vector from emb. cache
    sls_result_page_s: float = us(8.0)     # stage one result page for host DMA


class FtlCpu:
    """The two firmware cores as FIFO servers."""

    def __init__(self, sim: Simulator, costs: FtlCpuCosts | None = None):
        self.sim = sim
        self.costs = costs or FtlCpuCosts()
        self.host_core = Server(sim, capacity=1, name="arm.host_core")
        self.ftl_core = Server(sim, capacity=1, name="arm.ftl_core")

    @property
    def idle(self) -> bool:
        return self.host_core.idle and self.ftl_core.idle
