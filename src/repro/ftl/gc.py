"""Greedy garbage collection.

When a die's free-block pool drops below the low watermark, the collector
picks the closed block with the fewest valid pages, migrates the valid
pages to fresh locations (paying flash reads/programs and FTL CPU time),
erases the victim, and returns it to the free pool — repeating until the
high watermark is restored.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .ftl import GreedyFtl

__all__ = ["GarbageCollector"]


class GarbageCollector:
    def __init__(self, ftl: "GreedyFtl", low_watermark: int = 2, high_watermark: int = 4):
        if low_watermark < 1 or high_watermark < low_watermark:
            raise ValueError("watermarks must satisfy 1 <= low <= high")
        self.ftl = ftl
        self.low_watermark = low_watermark
        self.high_watermark = high_watermark
        self._active = [False] * ftl.geometry.dies
        self.runs = 0
        self.pages_moved = 0
        self.moves_aborted = 0
        self.blocks_reclaimed = 0
        self.stalls = 0

    def reset_stats(self) -> None:
        """Clear the GC gauges benchmarks read (not collection state)."""
        self.runs = 0
        self.pages_moved = 0
        self.moves_aborted = 0
        self.blocks_reclaimed = 0
        self.stalls = 0

    # ------------------------------------------------------------------
    def maybe_collect(self, die: int) -> None:
        if self._active[die]:
            return
        if self.ftl.blocks.free_blocks_in_die(die) >= self.low_watermark:
            return
        self._active[die] = True
        self.runs += 1
        self._collect_step(die)

    def _collect_step(self, die: int) -> None:
        blocks = self.ftl.blocks
        if blocks.free_blocks_in_die(die) >= self.high_watermark:
            self._active[die] = False
            return
        candidates = [
            b
            for b in self._closed_blocks_in_die(die)
            if b not in self.ftl.migrating_blocks and self.ftl.block_erasable(b)
        ]
        if not candidates:
            self._active[die] = False
            self.stalls += 1
            return
        victim = self.ftl.mapping.min_valid_block(candidates)
        if self.ftl.mapping.valid_pages_in_block(victim) >= self.ftl.geometry.pages_per_block:
            # Device is effectively full; collecting gains nothing.
            self._active[die] = False
            self.stalls += 1
            return
        self._migrate_block(die, victim)

    def _closed_blocks_in_die(self, die: int) -> List[int]:
        per_die = self.ftl.geometry.blocks_per_die
        lo, hi = die * per_die, (die + 1) * per_die
        return [b for b in self.ftl.blocks.closed_blocks() if lo <= b < hi]

    # ------------------------------------------------------------------
    def _migrate_block(self, die: int, victim: int) -> None:
        self.ftl.migrating_blocks.add(victim)
        lpns = self.ftl.mapping.valid_lpns_in_block(victim)
        remaining = len(lpns)
        tracer = self.ftl.sim.tracer
        span = None
        if tracer is not None:
            # One span per victim block: valid-page relocation through
            # the erase that reclaims it — the die time GC steals from
            # foreground reads.
            span = tracer.begin(
                "gc.migrate", die=die, block=victim, valid_pages=remaining
            )
        if remaining == 0:
            self._erase_victim(die, victim, span, lpns)
            return

        def move_done() -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                self._erase_victim(die, victim, span, lpns)

        for lpn in lpns:
            self._move_page(die, lpn, move_done)

    def _move_page(self, die: int, lpn: int, on_done) -> None:
        ftl = self.ftl
        old_ppn = ftl.mapping.lookup(lpn)

        def stale() -> bool:
            # Foreground traffic may rewrite the lpn at any yield point of
            # this migration.  Once it does, the copy we hold is stale:
            # abort before paying for an allocation + program that could
            # never be remapped (and, worse, would remap the lpn back to
            # stale content if only checked before our own callbacks ran).
            return ftl.mapping.lookup(lpn) != old_ppn

        def after_read(content) -> None:
            if stale():
                self.moves_aborted += 1
                on_done()
                return
            ftl.cpu.ftl_core.submit(
                ftl.cpu.costs.gc_page_move_s, lambda: after_cpu(content), priority=2
            )

        def after_cpu(content) -> None:
            from .blocks import OutOfSpaceError

            if stale():
                self.moves_aborted += 1
                on_done()
                return
            try:
                new_ppn = ftl.blocks.allocate_page(die)
            except OutOfSpaceError:
                # The die's reserve was consumed mid-migration (e.g. a
                # victim with more valid pages than one block's remnant);
                # migrate cross-die rather than wedging the collector.
                new_ppn = ftl.blocks.allocate_page()

            def after_program() -> None:
                # Last line of defense: the rewrite may land between the
                # allocate and this completion.  The programmed page is
                # then garbage (never mapped, reclaimed on the next erase
                # of its block) but the mapping stays correct.
                if stale():
                    self.moves_aborted += 1
                else:
                    ftl.mapping.map(lpn, new_ppn)
                    self.pages_moved += 1
                on_done()

            ftl.program_page(new_ppn, content, after_program)

        ftl.flash.read(old_ppn, after_read)

    def _erase_victim(self, die: int, victim: int, span=None, lpns=None) -> None:
        ftl = self.ftl

        def after_erase() -> None:
            ftl.migrating_blocks.discard(victim)
            ftl.blocks.release_block(victim)
            self.blocks_reclaimed += 1
            if span is not None and ftl.sim.tracer is not None:
                ftl.sim.tracer.end(span)
            if ftl.layout_migrator is not None and lpns:
                # Piggyback layout adaptation on the relocation we just
                # paid for: the victim's surviving rows are re-packed
                # against the current heatmap (bounded per cycle).
                ftl.layout_migrator.on_block_reclaimed(lpns)
            ftl.wear_check()
            ftl.notify_blocks_released()
            self._collect_step(die)

        ftl.flash.erase(victim, after_erase)
