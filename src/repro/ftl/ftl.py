"""The greedy page-mapped FTL (the Cosmos+ "GreedyFTL" analogue).

Exposes the logical page read/write interface consumed by the NVMe
controller, a preload fast path for installing table images without
simulating millions of programs, and hooks the NDP engine uses to issue
scheduled flash-page reads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

import numpy as np

from ..flash.array import FlashArray
from ..obs.resettable import register_resettable
from ..sim.kernel import Simulator
from .blocks import BlockManager, OutOfSpaceError
from .cpu import FtlCpu, FtlCpuCosts
from .gc import GarbageCollector
from .mapping import UNMAPPED, MappingTable
from .pagecache import PageCache
from .wear import WearLeveler

__all__ = ["FtlConfig", "GreedyFtl"]

ReadDone = Callable[[Any, bool], None]  # (content, cache_hit)
Done = Callable[[], None]


@dataclass(frozen=True)
class FtlConfig:
    lba_bytes: int = 4096
    overprovision: float = 0.25
    page_cache_pages: int = 4096          # 64 MiB of 16 KiB pages
    gc_low_watermark: int = 2
    gc_high_watermark: int = 4
    wear_threshold: int = 64

    def __post_init__(self) -> None:
        if not 0.0 <= self.overprovision < 1.0:
            raise ValueError("overprovision must be in [0, 1)")
        if self.lba_bytes < 512:
            raise ValueError("lba_bytes must be >= 512")


class GreedyFtl:
    """Page-mapped log-structured FTL over a :class:`FlashArray`."""

    def __init__(
        self,
        sim: Simulator,
        flash: FlashArray,
        cpu: Optional[FtlCpu] = None,
        config: Optional[FtlConfig] = None,
    ):
        self.sim = sim
        self.flash = flash
        self.geometry = flash.geometry
        self.config = config or FtlConfig()
        self.cpu = cpu or FtlCpu(sim)
        logical_pages = int(self.geometry.total_pages * (1.0 - self.config.overprovision))
        self.mapping = MappingTable(self.geometry, max(1, logical_pages))
        self.blocks = BlockManager(self.geometry)
        self.page_cache = PageCache(self.config.page_cache_pages)
        self.gc = GarbageCollector(
            self, self.config.gc_low_watermark, self.config.gc_high_watermark
        )
        self.wear = WearLeveler(self, self.config.wear_threshold)
        # Batched multi-page read path (False = scalar per-page reference,
        # used by the golden-equivalence tests and benchmark baselines).
        self.batch_reads = True
        # Stats
        self.host_page_reads = 0
        self.host_page_writes = 0
        self.flash_page_reads = 0
        self.write_stalls = 0
        self._erases_since_wear_check = 0
        self._stalled_writes: list[tuple[int, Any, Done]] = []
        # Blocks currently being migrated by GC or wear leveling; the other
        # service must not pick them as victims concurrently.
        self.migrating_blocks: set[int] = set()
        # In-flight program count per block: a block with queued programs
        # must not be erased (the die would reorder erase before program).
        self._inflight_programs: dict[int, int] = {}
        # Optional layout-migration hook (repro.embedding.placement.
        # LayoutMigrator): GC invokes it after each victim reclaim to
        # piggyback heat-driven row re-packing on the relocation.
        self.layout_migrator: Optional[Any] = None
        # One reset surface for every benchmark window (repro.obs):
        # ftl.reset_stats() cascades to page_cache/gc/wear, so only the
        # FTL itself registers.
        register_resettable(self)

    # ------------------------------------------------------------------
    # Derived geometry helpers
    # ------------------------------------------------------------------
    @property
    def page_bytes(self) -> int:
        return self.geometry.page_bytes

    @property
    def lbas_per_page(self) -> int:
        return self.geometry.page_bytes // self.config.lba_bytes

    @property
    def logical_pages(self) -> int:
        return self.mapping.logical_pages

    @property
    def logical_lbas(self) -> int:
        return self.logical_pages * self.lbas_per_page

    def lba_to_lpn(self, lba: int) -> int:
        return lba // self.lbas_per_page

    def lpn_range_for_lbas(self, slba: int, nlb: int) -> range:
        if nlb < 1:
            raise ValueError("nlb must be >= 1")
        first = self.lba_to_lpn(slba)
        last = self.lba_to_lpn(slba + nlb - 1)
        return range(first, last + 1)

    # ------------------------------------------------------------------
    # Foreground read path
    # ------------------------------------------------------------------
    def read_page(self, lpn: int, on_done: ReadDone) -> None:
        """Read logical page ``lpn`` through the page cache.

        ``on_done(content, cache_hit)`` runs after firmware + flash time.
        Unmapped pages return ``None`` content via the fast path.
        """
        self.host_page_reads += 1
        costs = self.cpu.costs
        hit, content = self.page_cache.lookup(lpn)
        if hit:
            self.cpu.ftl_core.submit(costs.io_hit_s, lambda: on_done(content, True))
            return
        ppn = self.mapping.lookup(lpn)
        if ppn == UNMAPPED:
            self.cpu.ftl_core.submit(costs.io_hit_s, lambda: on_done(None, True))
            return

        def after_cpu() -> None:
            self.flash_page_reads += 1
            self.flash.read(ppn, after_flash)

        def after_flash(content: Any) -> None:
            # None means the flash gave up (uncorrectable read): caching
            # it would turn a transient fault into a permanent zero-page.
            if content is not None:
                self.page_cache.insert(lpn, content)
            on_done(content, False)

        self.cpu.ftl_core.submit(costs.io_miss_s, after_cpu)

    def read_pages(self, lpns: list[int], on_done: Callable[[list[Any]], None]) -> None:
        """Read several logical pages of one command (batch fast path).

        The firmware pays the full command cost once plus a small per-extra-
        page cost (mapping lookup + channel-queue fill), so large sequential
        commands stream at near-flash bandwidth instead of per-page command
        cost — matching the prototype's ~1.3GB/s sequential envelope.

        Cache probes, mapping lookups and the flash fan-out run batched:
        one ``lookup_many`` per command and one die chain per (channel,
        way) group via :meth:`FlashArray.read_many`, instead of one
        closure per page.  ``batch_reads=False`` selects the scalar
        per-page reference path (golden-equivalence tests compare both).
        """
        if not self.batch_reads:
            self._read_pages_scalar(lpns, on_done)
            return
        if not lpns:
            self.sim.call_soon(lambda: on_done([]))
            return
        if len(lpns) == 1:
            self.read_page(lpns[0], lambda content, _hit: on_done([content]))
            return
        self.host_page_reads += len(lpns)
        costs = self.cpu.costs
        hits, contents = self.page_cache.lookup_many(lpns)
        miss_indices = [i for i, hit in enumerate(hits) if not hit]
        base = costs.io_miss_s if miss_indices else costs.io_hit_s
        cpu_cost = base + (len(lpns) - 1) * costs.io_extra_page_s

        def after_cpu() -> None:
            if not miss_indices:
                on_done(contents)
                return
            miss_lpns = np.asarray([lpns[i] for i in miss_indices], dtype=np.int64)
            ppns = self.mapping.lookup_many(miss_lpns)
            mapped = ppns != UNMAPPED
            flash_indices = [i for i, m in zip(miss_indices, mapped.tolist()) if m]
            if not flash_indices:
                on_done(contents)
                return
            self.flash_page_reads += len(flash_indices)
            remaining = {"n": len(flash_indices)}
            page_cache = self.page_cache

            def page_done(j: int, content: Any) -> None:
                i = flash_indices[j]
                contents[i] = content
                if content is not None:  # don't cache uncorrectable reads
                    page_cache.insert(lpns[i], content)
                remaining["n"] -= 1
                if remaining["n"] == 0:
                    on_done(contents)

            self.flash.read_many(ppns[mapped], page_done)

        self.cpu.ftl_core.submit(cpu_cost, after_cpu)

    def _read_pages_scalar(
        self, lpns: list[int], on_done: Callable[[list[Any]], None]
    ) -> None:
        """Scalar reference for :meth:`read_pages` (one closure per page).

        Kept verbatim as the golden baseline the batch path must match in
        simulated time and stats; ``benchmarks/bench_hotpath.py`` also
        times it as the "before" side.
        """
        if not lpns:
            self.sim.call_soon(lambda: on_done([]))
            return
        if len(lpns) == 1:
            self.read_page(lpns[0], lambda content, _hit: on_done([content]))
            return
        self.host_page_reads += len(lpns)
        costs = self.cpu.costs
        contents: list[Any] = [None] * len(lpns)
        # Probe the cache up front; misses go to flash after the CPU cost.
        miss_indices: list[int] = []
        for i, lpn in enumerate(lpns):
            hit, content = self.page_cache.lookup(lpn)
            if hit:
                contents[i] = content
            else:
                miss_indices.append(i)
        base = costs.io_miss_s if miss_indices else costs.io_hit_s
        cpu_cost = base + (len(lpns) - 1) * costs.io_extra_page_s

        def after_cpu() -> None:
            if not miss_indices:
                on_done(contents)
                return
            remaining = {"n": len(miss_indices)}
            for i in miss_indices:
                lpn = lpns[i]
                ppn = self.mapping.lookup(lpn)
                if ppn == UNMAPPED:
                    contents[i] = None
                    remaining["n"] -= 1
                    continue
                self.flash_page_reads += 1

                def make(i: int, lpn: int):
                    def cb(content: Any) -> None:
                        contents[i] = content
                        if content is not None:  # don't cache uncorrectable reads
                            self.page_cache.insert(lpn, content)
                        remaining["n"] -= 1
                        if remaining["n"] == 0:
                            on_done(contents)

                    return cb

                self.flash.read(ppn, make(i, lpn))
            if remaining["n"] == 0:
                on_done(contents)

        self.cpu.ftl_core.submit(cpu_cost, after_cpu)

    # ------------------------------------------------------------------
    # Foreground write path
    # ------------------------------------------------------------------
    def write_page(self, lpn: int, content: Any, on_done: Done) -> None:
        """Write one full logical page (log-structured allocate + program)."""
        if not 0 <= lpn < self.logical_pages:
            raise IndexError(f"lpn {lpn} out of logical range")
        self.host_page_writes += 1

        def after_cpu() -> None:
            self._do_write(lpn, content, on_done)

        self.cpu.ftl_core.submit(self.cpu.costs.write_accept_s, after_cpu)

    def _do_write(self, lpn: int, content: Any, on_done: Done) -> None:
        if not self.blocks.can_allocate(reserve=1):
            # Write stall: all dies are down to the GC reserve.  Queue the
            # write and kick collection; it resumes when a block frees up.
            self.write_stalls += 1
            self._stalled_writes.append((lpn, content, on_done))
            for die in range(self.geometry.dies):
                self.gc.maybe_collect(die)
            return
        ppn = self.blocks.allocate_page(reserve=1)
        die = self._die_of_ppn(ppn)

        def after_program() -> None:
            self.mapping.map(lpn, ppn)
            self.page_cache.insert(lpn, content)
            on_done()
            self.gc.maybe_collect(die)

        self.program_page(ppn, content, after_program)

    def program_page(self, ppn: int, content: Any, on_done: Done) -> None:
        """Issue a flash program with per-block in-flight accounting."""
        block_id = ppn // self.geometry.pages_per_block
        self._inflight_programs[block_id] = self._inflight_programs.get(block_id, 0) + 1

        def after_program() -> None:
            count = self._inflight_programs.get(block_id, 0) - 1
            if count <= 0:
                self._inflight_programs.pop(block_id, None)
            else:
                self._inflight_programs[block_id] = count
            on_done()

        self.flash.program(ppn, content, after_program)

    def block_erasable(self, block_id: int) -> bool:
        """True when no programs are queued/active against the block."""
        return self._inflight_programs.get(block_id, 0) == 0

    def notify_blocks_released(self) -> None:
        """Resume stalled writes after GC/wear leveling frees blocks."""
        while self._stalled_writes and self.blocks.can_allocate(reserve=1):
            lpn, content, on_done = self._stalled_writes.pop(0)
            self._do_write(lpn, content, on_done)

    def _die_of_ppn(self, ppn: int) -> int:
        addr = self.geometry.addr(ppn)
        return self.geometry.die_index(addr.channel, addr.way)

    # ------------------------------------------------------------------
    # NDP hook: scheduled flash page read without the IO-command overhead.
    # The SLS scheduling layer pays its own (cheaper) per-page CPU cost and
    # calls this to touch flash directly, exploiting internal parallelism.
    # ------------------------------------------------------------------
    def ndp_read_mapped_page(self, lpn: int, on_done: Callable[[Any], None]) -> None:
        ppn = self.mapping.lookup(lpn)
        if ppn == UNMAPPED:
            self.sim.call_soon(lambda: on_done(None))
            return
        self.flash_page_reads += 1
        self.flash.read(ppn, on_done)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def wear_check(self) -> None:
        """Called by GC after erases; rate-limits wear-leveling scans."""
        self._erases_since_wear_check += 1
        if self._erases_since_wear_check >= 8:
            self._erases_since_wear_check = 0
            self.wear.check()

    def trim_page(self, lpn: int) -> None:
        self.mapping.unmap(lpn)
        self.page_cache.invalidate(lpn)

    # ------------------------------------------------------------------
    # Preload fast path (no simulated time)
    # ------------------------------------------------------------------
    def preload_pages(self, lpn_start: int, contents: Iterable[Any]) -> int:
        """Install ``contents`` at consecutive LPNs; returns pages installed.

        Reserves whole blocks, installs content directly into the flash
        store and mapping.  Used to stand in for the one-time table load
        the paper performs before its measurements.
        """
        contents = list(contents)
        if not contents:
            return 0
        pages_needed = len(contents)
        if lpn_start + pages_needed > self.logical_pages:
            raise ValueError("preload exceeds logical space")
        blocks_needed = math.ceil(pages_needed / self.geometry.pages_per_block)
        block_ids = self.blocks.reserve_blocks(blocks_needed)
        idx = 0
        for block_id in block_ids:
            base_ppn = self.geometry.first_ppn_of_block(block_id)
            for page in range(self.geometry.pages_per_block):
                if idx >= pages_needed:
                    break
                ppn = base_ppn + page
                self.flash.store.install(ppn, contents[idx])
                self.mapping.map(lpn_start + idx, ppn)
                idx += 1
        return idx

    def preload_region(self, lpn_start: int, region: Any) -> int:
        """Install a virtual page region (e.g. an embedding table image).

        ``region`` provides ``page_count`` and ``page_content(offset)``.
        Consecutive logical pages are striped across dies exactly as the
        log-structured write path would place them, so sequential reads
        exploit full channel parallelism.  Whole blocks are reserved and
        mapped with vectorized bulk updates, so preloading a
        multi-million-page table is O(blocks) not O(pages).
        """
        pages_needed = int(region.page_count)
        if pages_needed <= 0:
            return 0
        if lpn_start + pages_needed > self.logical_pages:
            raise ValueError("preload exceeds logical space")
        per_block = self.geometry.pages_per_block
        dies = self.geometry.dies
        # Stripe across every die the way the write path would: each die
        # serves ~P/D pages, so small tables still occupy one (partially
        # filled) block on every die and sequential reads hit all channels.
        stripe_dies = min(dies, pages_needed)
        pages_per_die = math.ceil(pages_needed / stripe_dies)
        blocks_needed = stripe_dies * math.ceil(pages_per_die / per_block)
        block_ids = self.blocks.reserve_blocks(blocks_needed)
        # reserve_blocks hands out blocks round-robin across dies; group
        # them per die so die d serves logical pages d, d+D, d+2D, ...
        per_die_blocks: dict[int, list[int]] = {}
        for block_id in block_ids:
            die = block_id // self.geometry.blocks_per_die
            per_die_blocks.setdefault(die, []).append(block_id)
        die_order = sorted(per_die_blocks)
        n_dies = len(die_order)
        for d_idx, die in enumerate(die_order):
            # Logical offsets served by this die: d_idx, d_idx + n_dies, ...
            die_pages = (pages_needed - d_idx + n_dies - 1) // n_dies
            consumed = 0
            for block_id in per_die_blocks[die]:
                if consumed >= die_pages:
                    break
                count = min(per_block, die_pages - consumed)
                first_offset = d_idx + consumed * n_dies
                self.flash.store.install_region(
                    block_id, region, first_offset, stride=n_dies
                )
                base_ppn = self.geometry.first_ppn_of_block(block_id)
                ppns = np.arange(base_ppn, base_ppn + count, dtype=np.int64)
                offsets = first_offset + np.arange(count, dtype=np.int64) * n_dies
                self.mapping.bulk_map_pairs(lpn_start + offsets, ppns)
                consumed += count
            if consumed < die_pages:
                raise OutOfSpaceError(
                    f"die {die} reserved too few blocks for preload "
                    f"({consumed}/{die_pages} pages)"
                )
        return pages_needed

    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Clear the request counters benchmarks read (not device state)."""
        self.host_page_reads = 0
        self.host_page_writes = 0
        self.flash_page_reads = 0
        self.write_stalls = 0
        self.page_cache.reset_stats()
        self.gc.reset_stats()
        self.wear.reset_stats()

    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        return self.cpu.idle and self.flash.idle
