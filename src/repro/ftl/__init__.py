"""Flash translation layer: mapping, allocation, GC, wear leveling, cache."""

from .blocks import BlockManager, OutOfSpaceError
from .cpu import FtlCpu, FtlCpuCosts
from .ftl import FtlConfig, GreedyFtl
from .gc import GarbageCollector
from .layout import FrequencyLayout, ModuloLayout, RowLayout
from .mapping import UNMAPPED, MappingTable
from .pagecache import PageCache
from .wear import WearLeveler

__all__ = [
    "BlockManager",
    "OutOfSpaceError",
    "FtlCpu",
    "FtlCpuCosts",
    "FtlConfig",
    "GreedyFtl",
    "GarbageCollector",
    "FrequencyLayout",
    "ModuloLayout",
    "RowLayout",
    "MappingTable",
    "UNMAPPED",
    "PageCache",
    "WearLeveler",
]
