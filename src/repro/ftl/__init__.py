"""Flash translation layer: mapping, allocation, GC, wear leveling, cache."""

from .blocks import BlockManager, OutOfSpaceError
from .cpu import FtlCpu, FtlCpuCosts
from .ftl import FtlConfig, GreedyFtl
from .gc import GarbageCollector
from .mapping import UNMAPPED, MappingTable
from .pagecache import PageCache
from .wear import WearLeveler

__all__ = [
    "BlockManager",
    "OutOfSpaceError",
    "FtlCpu",
    "FtlCpuCosts",
    "FtlConfig",
    "GreedyFtl",
    "GarbageCollector",
    "MappingTable",
    "UNMAPPED",
    "PageCache",
    "WearLeveler",
]
