"""Row -> flash-page layout policies.

A layout is a bijection between a table's *external* row ids (what the
model looks up) and *internal* storage ranks (the order rows are packed
into flash pages: rank ``r`` lives in page ``r // rows_per_page``, slot
``r % rows_per_page``).  The legacy placement is the identity
(:class:`ModuloLayout`): row ``i`` sits at rank ``i``, which is the
implicit row-major layout every pre-layout version of this codebase
used.

:class:`FrequencyLayout` is RecSSD's answer to the under-utilized-read
problem (PAPER.md Section 4 / Fig. 4): each flash page read returns
``rows_per_page`` vectors but a query typically wants one of them, so
co-locating *hot* rows into shared pages raises the useful fraction of
every page read.  Ranks are assigned by descending measured heat (stable
on ties), so the hottest ``rows_per_page`` rows share page 0, the next
hottest share page 1, and so on — frequency-aware placement in the
spirit of RecFlash (PAPERS.md).

The permutation is *logical*: flash pages of an attached table read
through lazy :class:`~repro.embedding.table.TablePageContent` objects
that consult the layout at extraction time, so re-packing ranks (online
migration piggybacked on GC, :mod:`repro.embedding.placement`) never
copies row bytes — it only changes which external id a (page, slot)
resolves to, exactly like an FTL remap at row granularity.

Invariants (pinned by ``tests/ftl/test_layout.py``):

* ``storage_ids`` is a permutation of ``[0, rows)`` and
  ``external_ids`` is its exact inverse (round trip is the identity);
* uniform (or all-zero) heat reproduces the legacy modulo layout
  bit-identically, so enabling the machinery with no profile is a
  no-op.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["RowLayout", "ModuloLayout", "FrequencyLayout"]


class RowLayout:
    """Base bijection: external row id <-> internal storage rank."""

    def __init__(self, rows: int, rows_per_page: int):
        if rows < 1:
            raise ValueError("rows must be >= 1")
        if rows_per_page < 1:
            raise ValueError("rows_per_page must be >= 1")
        self.rows = rows
        self.rows_per_page = rows_per_page

    # -- bijection ------------------------------------------------------
    def storage_ids(self, ids: np.ndarray) -> np.ndarray:
        """Internal rank of each external row id."""
        raise NotImplementedError

    def external_ids(self, ranks: np.ndarray) -> np.ndarray:
        """External row id stored at each internal rank."""
        raise NotImplementedError

    # -- derived addressing --------------------------------------------
    def location(self, ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(page_index, slot) of each external row id."""
        ranks = self.storage_ids(np.asarray(ids, dtype=np.int64))
        return ranks // self.rows_per_page, ranks % self.rows_per_page

    def pages_of(self, ids: np.ndarray) -> np.ndarray:
        """Distinct page indices covering ``ids``."""
        ranks = self.storage_ids(np.asarray(ids, dtype=np.int64))
        return np.unique(ranks // self.rows_per_page)


class ModuloLayout(RowLayout):
    """Identity layout: rank == external id (the legacy placement)."""

    def storage_ids(self, ids: np.ndarray) -> np.ndarray:
        return np.asarray(ids, dtype=np.int64)

    def external_ids(self, ranks: np.ndarray) -> np.ndarray:
        return np.asarray(ranks, dtype=np.int64)


class FrequencyLayout(RowLayout):
    """Heat-ordered packing with in-place re-pack support.

    ``_ext_of[rank]`` holds the external id stored at ``rank``;
    ``_rank_of`` is the inverse.  ``version`` increments on every
    mutation so consumers holding derived state (none inside the
    simulator — caches are invalidated eagerly) can detect staleness.
    """

    def __init__(self, ext_of: np.ndarray, rows_per_page: int):
        ext_of = np.asarray(ext_of, dtype=np.int64)
        super().__init__(int(ext_of.size), rows_per_page)
        self._ext_of = ext_of.copy()
        self._rank_of = np.empty(self.rows, dtype=np.int64)
        self._rank_of[self._ext_of] = np.arange(self.rows, dtype=np.int64)
        self.version = 0
        self.rows_migrated = 0

    @classmethod
    def from_heat(
        cls,
        heat: Optional[np.ndarray],
        rows: int,
        rows_per_page: int,
    ) -> "FrequencyLayout":
        """Pack rows by descending heat (stable: ties keep id order).

        ``None`` or uniform heat therefore yields the identity
        permutation — the zero-heat oracle the tests pin against the
        legacy modulo layout.
        """
        if heat is None:
            ext_of = np.arange(rows, dtype=np.int64)
        else:
            heat = np.asarray(heat, dtype=np.float64)
            if heat.size != rows:
                raise ValueError(
                    f"heat has {heat.size} entries for a {rows}-row table"
                )
            ext_of = np.argsort(-heat, kind="stable").astype(np.int64)
        return cls(ext_of, rows_per_page)

    # -- bijection ------------------------------------------------------
    def storage_ids(self, ids: np.ndarray) -> np.ndarray:
        return self._rank_of[np.asarray(ids, dtype=np.int64)]

    def external_ids(self, ranks: np.ndarray) -> np.ndarray:
        return self._ext_of[np.asarray(ranks, dtype=np.int64)]

    # -- online migration ----------------------------------------------
    def repack_ranks(self, ranks: np.ndarray, heat: np.ndarray) -> np.ndarray:
        """Re-sort the rows currently stored at ``ranks`` by ``heat``.

        The external ids occupying ``ranks`` are reassigned among those
        same ranks so that hotter rows take lower ranks (stable on ties,
        then ascending external id for determinism): within a GC
        victim's page set this clusters the currently-hot rows into the
        lowest-numbered pages of the set.  Only positions whose assigned
        id actually changes are touched.  Returns the internal ranks
        whose occupant changed (the set a device-side vector cache must
        invalidate).
        """
        ranks = np.unique(np.asarray(ranks, dtype=np.int64))
        if ranks.size < 2:
            return np.zeros(0, dtype=np.int64)
        occupants = self._ext_of[ranks]
        keys = np.asarray(heat, dtype=np.float64)[occupants]
        # Descending heat; ties resolve by ascending external id so the
        # result is independent of the incoming occupant order.
        order = np.lexsort((occupants, -keys))
        new_occupants = occupants[order]
        changed = new_occupants != occupants
        if not np.any(changed):
            return np.zeros(0, dtype=np.int64)
        moved_ranks = ranks[changed]
        self._ext_of[moved_ranks] = new_occupants[changed]
        self._rank_of[new_occupants[changed]] = moved_ranks
        self.version += 1
        self.rows_migrated += int(np.count_nonzero(changed))
        return moved_ranks

    def check_permutation(self) -> None:
        """Validate the bijection (test hook)."""
        if not np.array_equal(
            np.sort(self._ext_of), np.arange(self.rows, dtype=np.int64)
        ):
            raise AssertionError("ext_of is not a permutation")
        if not np.array_equal(
            self._rank_of[self._ext_of], np.arange(self.rows, dtype=np.int64)
        ):
            raise AssertionError("rank_of is not the inverse of ext_of")
