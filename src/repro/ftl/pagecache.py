"""SSD-internal DRAM page cache (read cache for flash pages).

A fully associative LRU cache keyed by LPN, with pinning so pages stay
resident while a DMA or translation step is reading them.  Capacity is in
pages; the Cosmos+ board's DRAM is shared between this cache, the SLS
request buffer, and the SSD-side embedding cache.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional

from ..obs.resettable import register_resettable

__all__ = ["PageCache"]


class PageCache:
    """LRU page cache with pin counts."""

    def __init__(self, capacity_pages: int):
        if capacity_pages < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity_pages
        self._entries: "OrderedDict[int, Any]" = OrderedDict()
        self._pins: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.insert_failures = 0
        register_resettable(self)

    # ------------------------------------------------------------------
    def lookup(self, lpn: int) -> tuple[bool, Any]:
        """Probe the cache; counts hit/miss and refreshes recency on hit."""
        if self.capacity == 0:
            self.misses += 1
            return False, None
        if lpn in self._entries:
            self.hits += 1
            self._entries.move_to_end(lpn)
            return True, self._entries[lpn]
        self.misses += 1
        return False, None

    def lookup_many(self, lpns: list[int]) -> tuple[list[bool], list[Any]]:
        """Probe a batch of LPNs; equivalent to :meth:`lookup` in order.

        Returns aligned (hit, content) lists.  One method call replaces
        the FTL read path's per-page probe loop; the LRU bookkeeping is
        inherently per-key so the body stays a loop over the (small,
        per-command) batch.
        """
        if self.capacity == 0:
            self.misses += len(lpns)
            return [False] * len(lpns), [None] * len(lpns)
        entries = self._entries
        hits: list[bool] = []
        contents: list[Any] = []
        n_hits = 0
        for lpn in lpns:
            if lpn in entries:
                n_hits += 1
                entries.move_to_end(lpn)
                hits.append(True)
                contents.append(entries[lpn])
            else:
                hits.append(False)
                contents.append(None)
        self.hits += n_hits
        self.misses += len(lpns) - n_hits
        return hits, contents

    def peek(self, lpn: int) -> tuple[bool, Any]:
        """Probe without recency update or stat counting."""
        if lpn in self._entries:
            return True, self._entries[lpn]
        return False, None

    def insert(self, lpn: int, content: Any) -> None:
        """Insert/refresh ``lpn``; evicts LRU unpinned entries as needed."""
        if self.capacity == 0:
            return
        if lpn in self._entries:
            self._entries.move_to_end(lpn)
            self._entries[lpn] = content
            return
        while len(self._entries) >= self.capacity:
            if not self._evict_one():
                self.insert_failures += 1
                return  # everything pinned; drop the insert
        self._entries[lpn] = content

    def _evict_one(self) -> bool:
        for lpn in self._entries:
            if self._pins.get(lpn, 0) == 0:
                del self._entries[lpn]
                self.evictions += 1
                return True
        return False

    def invalidate(self, lpn: int) -> None:
        self._entries.pop(lpn, None)

    # ------------------------------------------------------------------
    def pin(self, lpn: int) -> None:
        self._pins[lpn] = self._pins.get(lpn, 0) + 1

    def unpin(self, lpn: int) -> None:
        count = self._pins.get(lpn, 0)
        if count <= 1:
            self._pins.pop(lpn, None)
        else:
            self._pins[lpn] = count - 1

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.insert_failures = 0
