"""Block allocation for the log-structured FTL.

Free blocks are pooled per die; the allocator keeps one active write block
per die and stripes consecutive page allocations across dies (channel
rotating fastest) so sequential writes exploit channel parallelism, as the
Cosmos+ greedy FTL does.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

import numpy as np

from ..flash.geometry import FlashGeometry

__all__ = ["BlockManager", "OutOfSpaceError"]


class OutOfSpaceError(RuntimeError):
    """No free blocks available (GC failed to keep up or space exhausted)."""


class BlockManager:
    """Tracks free/active/used blocks and erase counts per die."""

    def __init__(self, geometry: FlashGeometry):
        self.geometry = geometry
        self._free: List[Deque[int]] = [deque() for _ in range(geometry.dies)]
        self._active_block: List[Optional[int]] = [None] * geometry.dies
        self._active_page: List[int] = [0] * geometry.dies
        self._used: set[int] = set()
        self.erase_counts = np.zeros(geometry.total_blocks, dtype=np.int64)
        self._next_die = 0
        for block_id in range(geometry.total_blocks):
            die = block_id // geometry.blocks_per_die
            self._free[die].append(block_id)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate_page(self, die: Optional[int] = None, reserve: int = 0) -> int:
        """Return the next free PPN, striping across dies when unspecified.

        ``reserve`` free blocks per die are kept back (foreground writes
        pass ``reserve=1`` so garbage collection always has a migration
        target; GC itself allocates with ``reserve=0``).
        """
        if die is None:
            for _ in range(self.geometry.dies):
                candidate = self._next_die
                self._next_die = (self._next_die + 1) % self.geometry.dies
                if self._die_allocatable(candidate, reserve):
                    die = candidate
                    break
            if die is None:
                raise OutOfSpaceError(
                    f"no die can allocate (reserve={reserve}); GC behind"
                )
        block_id = self._active_block[die]
        if block_id is None:
            block_id = self._open_block(die, reserve)
        page = self._active_page[die]
        ppn = self.geometry.first_ppn_of_block(block_id) + page
        self._active_page[die] += 1
        if self._active_page[die] >= self.geometry.pages_per_block:
            self._active_block[die] = None
            self._active_page[die] = 0
        return ppn

    def _die_allocatable(self, die: int, reserve: int) -> bool:
        if self._active_block[die] is not None:
            return True
        return len(self._free[die]) > reserve

    def can_allocate(self, reserve: int = 0) -> bool:
        return any(
            self._die_allocatable(d, reserve) for d in range(self.geometry.dies)
        )

    def _open_block(self, die: int, reserve: int = 0) -> int:
        if len(self._free[die]) <= reserve:
            raise OutOfSpaceError(
                f"die {die} has no free blocks beyond reserve {reserve}"
            )
        block_id = self._free[die].popleft()
        self._used.add(block_id)
        self._active_block[die] = block_id
        self._active_page[die] = 0
        return block_id

    def reserve_blocks(self, count: int) -> List[int]:
        """Take ``count`` whole free blocks round-robin across dies (preload)."""
        taken: List[int] = []
        die = 0
        misses = 0
        while len(taken) < count:
            if self._free[die]:
                block_id = self._free[die].popleft()
                self._used.add(block_id)
                taken.append(block_id)
                misses = 0
            else:
                misses += 1
                if misses >= self.geometry.dies:
                    # Roll back so a failed reservation leaves state unchanged.
                    for block_id in taken:
                        self._used.discard(block_id)
                        self._free[block_id // self.geometry.blocks_per_die].append(block_id)
                    raise OutOfSpaceError(
                        f"cannot reserve {count} blocks ({len(taken)} available)"
                    )
            die = (die + 1) % self.geometry.dies
        return taken

    # ------------------------------------------------------------------
    # Reclamation
    # ------------------------------------------------------------------
    def release_block(self, block_id: int) -> None:
        """Return an erased block to its die's free pool."""
        if block_id in self._used:
            self._used.discard(block_id)
        self.erase_counts[block_id] += 1
        die = block_id // self.geometry.blocks_per_die
        self._free[die].append(block_id)

    def used_blocks(self) -> List[int]:
        return sorted(self._used)

    def closed_blocks(self) -> List[int]:
        """Used blocks that are not currently active write blocks."""
        active = set(b for b in self._active_block if b is not None)
        return [b for b in sorted(self._used) if b not in active]

    def free_blocks_in_die(self, die: int) -> int:
        return len(self._free[die])

    @property
    def total_free_blocks(self) -> int:
        return sum(len(q) for q in self._free)

    @property
    def min_free_per_die(self) -> int:
        return min(len(q) for q in self._free)

    def wear_spread(self) -> int:
        """Max-min erase count across blocks (wear-leveling metric)."""
        return int(self.erase_counts.max() - self.erase_counts.min())
