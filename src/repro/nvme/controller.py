"""Device-side NVMe controller.

Fetches commands from submission queues (paying PCIe and host-interface
CPU time), dispatches conventional IO to the FTL, routes NDP-flagged
commands to the attached SLS engine, DMAs data, and posts completions.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..ftl.ftl import GreedyFtl
from ..sim.kernel import Simulator
from .commands import (
    COMMAND_BYTES,
    COMPLETION_BYTES,
    NvmeCommand,
    NvmeCompletion,
    Opcode,
    Status,
)
from .payload import (
    PageImagePayload,
    ReadPayload,
    ReadSegment,
    page_content_to_bytes,
)
from .pcie import PcieLink
from .queues import QueuePair

__all__ = ["NvmeController"]


class NvmeController:
    """Bridges queue pairs to the FTL / NDP engine over a PCIe link."""

    def __init__(self, sim: Simulator, ftl: GreedyFtl, pcie: PcieLink):
        self.sim = sim
        self.ftl = ftl
        self.pcie = pcie
        self.qpairs: Dict[int, QueuePair] = {}
        self.ndp_engine: Optional[Any] = None  # set by the SSD device assembly
        self.commands_fetched = 0
        self.reads_served = 0
        self.writes_served = 0
        self.inflight = 0
        self._fetch_active: Dict[int, bool] = {}

    # ------------------------------------------------------------------
    # Queue registration / doorbells
    # ------------------------------------------------------------------
    def attach_qpair(self, qp: QueuePair) -> None:
        if qp.qid in self.qpairs:
            raise ValueError(f"qpair {qp.qid} already attached")
        self.qpairs[qp.qid] = qp
        self._fetch_active[qp.qid] = False
        qp.sq.set_doorbell(self._doorbell)

    def _doorbell(self, qid: int) -> None:
        if not self._fetch_active[qid]:
            self._fetch_active[qid] = True
            self._fetch_next(qid)

    def _fetch_next(self, qid: int) -> None:
        qp = self.qpairs[qid]
        cmd = qp.sq.pop()
        if cmd is None:
            self._fetch_active[qid] = False
            return

        def after_xfer() -> None:
            self.ftl.cpu.host_core.submit(
                self.ftl.cpu.costs.cmd_fetch_s, lambda: after_cpu()
            )

        def after_cpu() -> None:
            self.commands_fetched += 1
            self.inflight += 1
            self._dispatch(qp, cmd)
            self._fetch_next(qid)

        self.pcie.to_device(COMMAND_BYTES, after_xfer)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, qp: QueuePair, cmd: NvmeCommand) -> None:
        if cmd.ndp:
            self._dispatch_ndp(qp, cmd)
            return
        if cmd.opcode is Opcode.READ:
            self._do_read(qp, cmd)
        elif cmd.opcode is Opcode.WRITE:
            self._do_write(qp, cmd)
        elif cmd.opcode is Opcode.FLUSH:
            self.complete(qp, cmd, None, Status.SUCCESS)
        elif cmd.opcode is Opcode.DSM:
            self._do_trim(qp, cmd)
        else:  # pragma: no cover - enum is closed
            self.complete(qp, cmd, None, Status.INVALID_FIELD)

    def _dispatch_ndp(self, qp: QueuePair, cmd: NvmeCommand) -> None:
        if self.ndp_engine is None:
            self.complete(qp, cmd, None, Status.INVALID_FIELD)
            return
        done: Callable[[Any, Status], None] = lambda payload, status: self.complete(
            qp, cmd, payload, status
        )
        if cmd.opcode is Opcode.WRITE:
            self.ndp_engine.handle_config_write(cmd, done)
        elif cmd.opcode is Opcode.READ:
            self.ndp_engine.handle_result_read(cmd, done)
        else:
            self.complete(qp, cmd, None, Status.INVALID_FIELD)

    # ------------------------------------------------------------------
    # Conventional read
    # ------------------------------------------------------------------
    def _do_read(self, qp: QueuePair, cmd: NvmeCommand) -> None:
        lba_bytes = self.ftl.config.lba_bytes
        if cmd.slba + cmd.nlb > self.ftl.logical_lbas:
            self.complete(qp, cmd, None, Status.LBA_OUT_OF_RANGE)
            return
        self.reads_served += 1
        lpns = list(self.ftl.lpn_range_for_lbas(cmd.slba, cmd.nlb))
        total_bytes = cmd.nlb * lba_bytes
        start_byte = cmd.slba * lba_bytes
        end_byte = start_byte + total_bytes
        page_bytes = self.ftl.page_bytes

        tracer = self.sim.tracer
        read_span = None
        if tracer is not None:
            read_span = tracer.begin(
                "ftl.read",
                parent=getattr(cmd, "obs_span", None),
                pages=len(lpns),
            )

        def on_contents(contents: List[Any]) -> None:
            if read_span is not None:
                tracer.end(read_span)
            segments: List[ReadSegment] = []
            for lpn, content in zip(lpns, contents):
                page_start = lpn * page_bytes
                seg_start = max(start_byte, page_start)
                seg_end = min(end_byte, page_start + page_bytes)
                segments.append(
                    ReadSegment(
                        lpn=lpn,
                        content=content,
                        offset=seg_start - page_start,
                        nbytes=seg_end - seg_start,
                    )
                )
            payload = ReadPayload(segments=segments, nbytes=total_bytes)

            def after_dma_setup() -> None:
                self.pcie.to_host(total_bytes, lambda: self.complete(qp, cmd, payload))

            self.ftl.cpu.host_core.submit(self.ftl.cpu.costs.dma_setup_s, after_dma_setup)

        self.ftl.read_pages(lpns, on_contents)

    # ------------------------------------------------------------------
    # TRIM (dataset management deallocate): drop mappings for whole pages
    # covered by the range; partially covered pages are left intact.
    # ------------------------------------------------------------------
    def _do_trim(self, qp: QueuePair, cmd: NvmeCommand) -> None:
        lba_bytes = self.ftl.config.lba_bytes
        if cmd.slba + cmd.nlb > self.ftl.logical_lbas:
            self.complete(qp, cmd, None, Status.LBA_OUT_OF_RANGE)
            return
        lbas_per_page = self.ftl.lbas_per_page
        first_full = -(-cmd.slba // lbas_per_page)
        last_full = (cmd.slba + cmd.nlb) // lbas_per_page
        lpns = list(range(first_full, last_full))

        def after_cpu() -> None:
            for lpn in lpns:
                self.ftl.trim_page(lpn)
            self.complete(qp, cmd, None)

        cost = self.ftl.cpu.costs.io_hit_s + len(lpns) * 1e-6
        self.ftl.cpu.ftl_core.submit(cost, after_cpu)

    # ------------------------------------------------------------------
    # Conventional write
    # ------------------------------------------------------------------
    def _do_write(self, qp: QueuePair, cmd: NvmeCommand) -> None:
        lba_bytes = self.ftl.config.lba_bytes
        if cmd.slba + cmd.nlb > self.ftl.logical_lbas:
            self.complete(qp, cmd, None, Status.LBA_OUT_OF_RANGE)
            return
        if isinstance(cmd.data, PageImagePayload):
            self._do_write_images(qp, cmd)
            return
        data = np.asarray(cmd.data, dtype=np.uint8).reshape(-1)
        total_bytes = cmd.nlb * lba_bytes
        if data.size != total_bytes:
            self.complete(qp, cmd, None, Status.INVALID_FIELD)
            return
        self.writes_served += 1

        def after_data() -> None:
            self._write_pages(qp, cmd, data)

        self.pcie.to_device(total_bytes, after_data)

    def _do_write_images(self, qp: QueuePair, cmd: NvmeCommand) -> None:
        """Whole-page writes carrying content objects instead of bytes.

        The host pays the same wire transfer as a byte write of the same
        span; the FTL then programs each page with the carried content
        (virtual table pages stay read-through after the rewrite).
        """
        payload: PageImagePayload = cmd.data
        lba_bytes = self.ftl.config.lba_bytes
        lbas_per_page = self.ftl.lbas_per_page
        total_bytes = cmd.nlb * lba_bytes
        if (
            cmd.slba % lbas_per_page != 0
            or cmd.nlb != len(payload.contents) * lbas_per_page
            or payload.nbytes != total_bytes
        ):
            self.complete(qp, cmd, None, Status.INVALID_FIELD)
            return
        self.writes_served += 1
        base_lpn = cmd.slba // lbas_per_page
        remaining = len(payload.contents)
        tracer = self.sim.tracer
        write_span = None
        if tracer is not None:
            write_span = tracer.begin(
                "ftl.write",
                parent=getattr(cmd, "obs_span", None),
                pages=len(payload.contents),
            )

        def page_written() -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                if write_span is not None:
                    tracer.end(write_span)
                self.complete(qp, cmd, None)

        def after_data() -> None:
            for i, content in enumerate(payload.contents):
                self.ftl.write_page(base_lpn + i, content, page_written)

        self.pcie.to_device(total_bytes, after_data)

    def _write_pages(self, qp: QueuePair, cmd: NvmeCommand, data: np.ndarray) -> None:
        lba_bytes = self.ftl.config.lba_bytes
        page_bytes = self.ftl.page_bytes
        start_byte = cmd.slba * lba_bytes
        end_byte = start_byte + data.size
        lpns = list(self.ftl.lpn_range_for_lbas(cmd.slba, cmd.nlb))
        remaining = len(lpns)
        tracer = self.sim.tracer
        write_span = None
        if tracer is not None:
            write_span = tracer.begin(
                "ftl.write",
                parent=getattr(cmd, "obs_span", None),
                pages=len(lpns),
            )

        def page_written() -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                if write_span is not None:
                    tracer.end(write_span)
                self.complete(qp, cmd, None)

        for lpn in lpns:
            page_start = lpn * page_bytes
            seg_start = max(start_byte, page_start)
            seg_end = min(end_byte, page_start + page_bytes)
            chunk = data[seg_start - start_byte : seg_end - start_byte]
            if seg_end - seg_start == page_bytes:
                self.ftl.write_page(lpn, chunk.copy(), page_written)
            else:
                self._read_modify_write(
                    lpn, chunk, seg_start - page_start, page_written
                )

    def _read_modify_write(
        self, lpn: int, chunk: np.ndarray, offset: int, on_done: Callable[[], None]
    ) -> None:
        page_bytes = self.ftl.page_bytes

        def after_read(content: Any, _hit: bool) -> None:
            page = page_content_to_bytes(content, page_bytes).copy()
            page[offset : offset + chunk.size] = chunk
            self.ftl.write_page(lpn, page, on_done)

        self.ftl.read_page(lpn, after_read)

    # ------------------------------------------------------------------
    # DMA helpers for the NDP engine
    # ------------------------------------------------------------------
    def dma_to_host(self, nbytes: int, on_done: Callable[[], None]) -> None:
        def after_setup() -> None:
            self.pcie.to_host(nbytes, on_done)

        self.ftl.cpu.host_core.submit(self.ftl.cpu.costs.dma_setup_s, after_setup)

    def dma_to_device(self, nbytes: int, on_done: Callable[[], None]) -> None:
        def after_setup() -> None:
            self.pcie.to_device(nbytes, on_done)

        self.ftl.cpu.host_core.submit(self.ftl.cpu.costs.dma_setup_s, after_setup)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def complete(
        self,
        qp: QueuePair,
        cmd: NvmeCommand,
        payload: Any = None,
        status: Status = Status.SUCCESS,
    ) -> None:
        def after_cpu() -> None:
            self.pcie.to_host(COMPLETION_BYTES, post)

        def post() -> None:
            self.inflight -= 1
            qp.cq.post(
                NvmeCompletion(
                    cid=cmd.cid,
                    status=status,
                    payload=payload,
                    complete_time=self.sim.now,
                )
            )

        self.ftl.cpu.host_core.submit(self.ftl.cpu.costs.cmd_complete_s, after_cpu)
