"""NVMe command model, including the RecSSD NDP command encoding.

RecSSD keeps full NVMe compatibility: NDP SLS commands reuse the standard
read/write command structure and are distinguished by a single unused
command bit (Section 4.3).  The config-write and result-read halves of an
SLS operation are associated by embedding a request id into the starting
LBA: ``slba = table_base_lba + request_id``, recoverable with a modulus
given a minimum table size/alignment.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

__all__ = [
    "Opcode",
    "NvmeCommand",
    "NvmeCompletion",
    "Status",
    "SlbaCodec",
    "COMMAND_BYTES",
    "COMPLETION_BYTES",
]

COMMAND_BYTES = 64
COMPLETION_BYTES = 16

_cid_counter = itertools.count(1)


class Opcode(Enum):
    READ = 0x02
    WRITE = 0x01
    FLUSH = 0x00
    DSM = 0x09  # dataset management (deallocate / TRIM)


class Status(Enum):
    SUCCESS = 0x0
    INVALID_FIELD = 0x2
    LBA_OUT_OF_RANGE = 0x80
    INTERNAL_ERROR = 0x6


@dataclass
class NvmeCommand:
    """A submission-queue entry.

    ``ndp`` models the unused command bit that routes the command to the
    SLS engine instead of the conventional IO path.  ``data`` carries the
    payload object for writes (bytes for conventional IO, an
    ``SlsConfig`` for NDP config writes).
    """

    opcode: Opcode
    slba: int
    nlb: int
    nsid: int = 1
    ndp: bool = False
    data: Any = None
    cid: int = field(default_factory=lambda: next(_cid_counter))
    submit_time: float = 0.0

    def __post_init__(self) -> None:
        if self.slba < 0:
            raise ValueError("slba must be >= 0")
        if self.opcode not in (Opcode.FLUSH,) and self.nlb < 1:
            raise ValueError("nlb must be >= 1")


@dataclass
class NvmeCompletion:
    cid: int
    status: Status = Status.SUCCESS
    payload: Any = None
    complete_time: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status is Status.SUCCESS


class SlbaCodec:
    """Encode/decode the (table base, request id) pair inside an SLBA.

    ``alignment_lbas`` is the minimum table size/alignment in logical
    blocks; table base addresses must be multiples of it and request ids
    must be smaller than it, so ``slba % alignment`` recovers the id.
    """

    def __init__(self, alignment_lbas: int):
        if alignment_lbas < 2:
            raise ValueError("alignment must be >= 2 LBAs")
        self.alignment = alignment_lbas

    def validate_table_base(self, table_base_lba: int) -> None:
        if table_base_lba % self.alignment != 0:
            raise ValueError(
                f"table base {table_base_lba} not aligned to {self.alignment}"
            )

    def encode(self, table_base_lba: int, request_id: int) -> int:
        self.validate_table_base(table_base_lba)
        if not 0 <= request_id < self.alignment:
            raise ValueError(
                f"request id {request_id} out of range [0, {self.alignment})"
            )
        return table_base_lba + request_id

    def decode(self, slba: int) -> tuple[int, int]:
        """Return ``(table_base_lba, request_id)``."""
        request_id = slba % self.alignment
        return slba - request_id, request_id
