"""NVMe submission/completion queue pairs with doorbell callbacks."""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from .commands import NvmeCommand, NvmeCompletion

__all__ = ["SubmissionQueue", "CompletionQueue", "QueuePair", "QueueFullError"]


class QueueFullError(RuntimeError):
    pass


class SubmissionQueue:
    """Bounded ring written by the host, drained by the controller."""

    def __init__(self, qid: int, depth: int):
        if depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.qid = qid
        self.depth = depth
        self._ring: Deque[NvmeCommand] = deque()
        self._doorbell: Optional[Callable[[int], None]] = None
        self.submitted = 0

    def set_doorbell(self, callback: Callable[[int], None]) -> None:
        self._doorbell = callback

    def push(self, cmd: NvmeCommand) -> None:
        if len(self._ring) >= self.depth:
            raise QueueFullError(f"SQ{self.qid} full (depth {self.depth})")
        self._ring.append(cmd)
        self.submitted += 1
        if self._doorbell is not None:
            self._doorbell(self.qid)

    def pop(self) -> Optional[NvmeCommand]:
        return self._ring.popleft() if self._ring else None

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def full(self) -> bool:
        return len(self._ring) >= self.depth


class CompletionQueue:
    """Bounded ring written by the controller, polled by the host driver."""

    def __init__(self, qid: int, depth: int):
        self.qid = qid
        self.depth = depth
        self._ring: Deque[NvmeCompletion] = deque()
        self._on_post: Optional[Callable[[int], None]] = None
        self.completed = 0

    def set_notify(self, callback: Callable[[int], None]) -> None:
        """Notify hook used by the polling driver model (stands in for the
        host noticing a phase-bit flip on its next poll)."""
        self._on_post = callback

    def post(self, cpl: NvmeCompletion) -> None:
        self._ring.append(cpl)
        self.completed += 1
        if self._on_post is not None:
            self._on_post(self.qid)

    def poll(self) -> Optional[NvmeCompletion]:
        return self._ring.popleft() if self._ring else None

    def __len__(self) -> int:
        return len(self._ring)


class QueuePair:
    """One SQ/CQ pair; NVMe IO queues map 1:1 in this model."""

    def __init__(self, qid: int, depth: int):
        self.qid = qid
        self.depth = depth
        self.sq = SubmissionQueue(qid, depth)
        self.cq = CompletionQueue(qid, depth)
        self.outstanding = 0

    @property
    def can_submit(self) -> bool:
        return self.outstanding < self.depth and not self.sq.full
