"""PCIe link model: two simplex bandwidth pipes plus fixed latency."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..sim.kernel import Simulator
from ..sim.resources import BandwidthPipe
from ..sim.units import GB_S, us

__all__ = ["PcieConfig", "PcieLink"]


@dataclass(frozen=True)
class PcieConfig:
    """Defaults approximate PCIe Gen2 x8 (the Cosmos+ host link)."""

    bandwidth_bytes_s: float = GB_S(3.2)
    latency_s: float = us(1.0)

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("latency must be >= 0")


class PcieLink:
    """Full-duplex link: independent host->device and device->host pipes."""

    def __init__(self, sim: Simulator, config: PcieConfig | None = None):
        self.sim = sim
        self.config = config or PcieConfig()
        self.h2d = BandwidthPipe(
            sim, self.config.bandwidth_bytes_s, self.config.latency_s, name="pcie.h2d"
        )
        self.d2h = BandwidthPipe(
            sim, self.config.bandwidth_bytes_s, self.config.latency_s, name="pcie.d2h"
        )

    def to_device(self, size_bytes: int, on_done: Callable[[], None]) -> None:
        self.h2d.transfer(size_bytes, on_done)

    def to_host(self, size_bytes: int, on_done: Callable[[], None]) -> None:
        self.d2h.transfer(size_bytes, on_done)

    @property
    def bytes_to_device(self) -> int:
        return self.h2d.bytes_transferred

    @property
    def bytes_to_host(self) -> int:
        return self.d2h.bytes_transferred
