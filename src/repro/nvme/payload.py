"""Payload objects carried by simulated NVMe data transfers.

Read data is returned as a list of page *segments* referencing the page
content objects held by the flash store/page cache.  Carrying references
(rather than copying 16KB byte buffers per access) keeps the simulator
fast while preserving data identity end-to-end; ``to_bytes`` materializes
real bytes when a test or host consumer needs them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

import numpy as np

__all__ = [
    "ReadSegment",
    "ReadPayload",
    "PageImagePayload",
    "page_content_to_bytes",
]


def page_content_to_bytes(content: Any, page_bytes: int) -> np.ndarray:
    """Materialize a page content object into a uint8 array of page size."""
    if content is None:
        return np.zeros(page_bytes, dtype=np.uint8)
    if isinstance(content, np.ndarray):
        buf = content.view(np.uint8).reshape(-1)
        if buf.size != page_bytes:
            raise ValueError(f"page buffer is {buf.size} bytes, expected {page_bytes}")
        return buf
    materialize = getattr(content, "materialize", None)
    if materialize is not None:
        buf = materialize()
        if buf.size != page_bytes:
            raise ValueError("materialized page has wrong size")
        return buf
    raise TypeError(f"cannot materialize page content of type {type(content)!r}")


@dataclass
class ReadSegment:
    """One contiguous byte range within a single logical page."""

    lpn: int
    content: Any
    offset: int
    nbytes: int


@dataclass
class PageImagePayload:
    """Full-page write images carried by reference, one content per LPN.

    The IO write path normally carries raw bytes; live embedding updates
    instead ship fresh virtual page contents (``TablePageContent``) so a
    rewritten page keeps reading through the table's committed data
    while the device pays the full transfer + program costs.  The write
    command's SLBA must be page-aligned and span exactly
    ``len(contents)`` pages; ``nbytes`` is the modelled wire size.
    """

    contents: List[Any]
    nbytes: int


@dataclass
class ReadPayload:
    """Ordered segments covering the LBA range of a read command."""

    segments: List[ReadSegment]
    nbytes: int

    def to_bytes(self, page_bytes: int) -> np.ndarray:
        """Concatenate all segments into one uint8 buffer."""
        parts = []
        for seg in self.segments:
            page = page_content_to_bytes(seg.content, page_bytes)
            parts.append(page[seg.offset : seg.offset + seg.nbytes])
        if not parts:
            return np.zeros(0, dtype=np.uint8)
        out = np.concatenate(parts)
        if out.size != self.nbytes:
            raise AssertionError("payload size mismatch")
        return out
