"""NVMe protocol model: commands, queues, PCIe link, device controller."""

from .commands import (
    COMMAND_BYTES,
    COMPLETION_BYTES,
    NvmeCommand,
    NvmeCompletion,
    Opcode,
    SlbaCodec,
    Status,
)
from .controller import NvmeController
from .payload import ReadPayload, ReadSegment, page_content_to_bytes
from .pcie import PcieConfig, PcieLink
from .queues import CompletionQueue, QueueFullError, QueuePair, SubmissionQueue

__all__ = [
    "COMMAND_BYTES",
    "COMPLETION_BYTES",
    "NvmeCommand",
    "NvmeCompletion",
    "Opcode",
    "SlbaCodec",
    "Status",
    "NvmeController",
    "ReadPayload",
    "ReadSegment",
    "page_content_to_bytes",
    "PcieConfig",
    "PcieLink",
    "CompletionQueue",
    "QueueFullError",
    "QueuePair",
    "SubmissionQueue",
]
