"""Embedding table specification: shape, element type, flash layout."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..quant import EmbDtype, QuantSpec

__all__ = ["Layout", "TableSpec"]


class Layout(Enum):
    """How vectors map to flash pages.

    ``ONE_PER_PAGE`` is the paper's evaluation assumption for the large
    sparse-access tables (high miss rates make block packing useless);
    ``PACKED`` stores ``page_bytes // row_bytes`` vectors per page, used
    for the small tables of the MLP-dominated models and for the SEQ
    microbenchmark where spatial locality matters.
    """

    ONE_PER_PAGE = "one_per_page"
    PACKED = "packed"


@dataclass(frozen=True)
class TableSpec:
    name: str
    rows: int
    dim: int
    quant: QuantSpec = field(default_factory=QuantSpec)
    layout: Layout = Layout.ONE_PER_PAGE

    def __post_init__(self) -> None:
        if self.rows < 1:
            raise ValueError("rows must be >= 1")
        if self.dim < 1:
            raise ValueError("dim must be >= 1")

    # ------------------------------------------------------------------
    @property
    def row_bytes(self) -> int:
        return self.quant.row_bytes(self.dim)

    @property
    def logical_bytes(self) -> int:
        return self.rows * self.row_bytes

    def rows_per_page(self, page_bytes: int) -> int:
        if self.layout is Layout.ONE_PER_PAGE:
            return 1
        per_page = page_bytes // self.row_bytes
        if per_page < 1:
            raise ValueError(
                f"row of {self.row_bytes} bytes does not fit a {page_bytes}B page"
            )
        return per_page

    def table_pages(self, page_bytes: int) -> int:
        per_page = self.rows_per_page(page_bytes)
        return -(-self.rows // per_page)

    def with_name(self, name: str) -> "TableSpec":
        return TableSpec(name, self.rows, self.dim, self.quant, self.layout)

    def shard(self, shard_index: int, rows: int) -> "TableSpec":
        """Spec for one row shard of this table.

        Same dim/quant/layout; ``rows`` is the shard-local row count and
        the name is suffixed so the shard is distinguishable in logs and
        on-device placement (``events@s2`` is shard 2 of ``events``).
        """
        if rows < 1:
            raise ValueError("a row shard must own at least one row")
        return TableSpec(
            f"{self.name}@s{shard_index}", rows, self.dim, self.quant, self.layout
        )
