"""Embedding table data sources.

``DenseTableData`` holds an explicit float32 array (small tables, tests).
``VirtualTableData`` generates deterministic per-row vectors on demand
from a seeded pool, so the 16GB logical footprint of a million-row
one-vector-per-page table costs a few MB of host RAM.  Both produce
identical values every time for a given (seed, row), which is what lets
every backend's result be checked against the in-DRAM reference.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["TableData", "DenseTableData", "VirtualTableData", "MappedTableData"]

_STAMP_PRIME = 1_000_003
_HASH_MULT = 2_654_435_761


class TableData(ABC):
    """Source of raw (pre-quantization) float32 row vectors."""

    rows: int
    dim: int

    @abstractmethod
    def get_rows(self, ids: np.ndarray) -> np.ndarray:
        """Return float32 ``[len(ids), dim]``; ids must be in range."""

    def _check_ids(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.rows):
            raise IndexError(
                f"row id out of range [0, {self.rows}) "
                f"(got min={ids.min()}, max={ids.max()})"
            )
        return ids


class DenseTableData(TableData):
    def __init__(self, values: np.ndarray):
        values = np.asarray(values, dtype=np.float32)
        if values.ndim != 2:
            raise ValueError("values must be 2-D [rows, dim]")
        self.values = values
        self.rows, self.dim = values.shape

    @classmethod
    def random(cls, rows: int, dim: int, seed: int = 0) -> "DenseTableData":
        rng = np.random.default_rng(seed)
        return cls(rng.standard_normal((rows, dim)).astype(np.float32) * 0.1)

    def get_rows(self, ids: np.ndarray) -> np.ndarray:
        ids = self._check_ids(ids)
        return self.values[ids].copy()


class VirtualTableData(TableData):
    """Deterministic synthetic rows: pooled base vectors plus a row stamp.

    ``row r`` is ``pool[r % pool_rows]`` with element 0 replaced by a
    row-unique hash value, so distinct rows are distinguishable (sum
    mismatches are detectable) while generation stays vectorized.
    """

    def __init__(self, rows: int, dim: int, seed: int = 0, pool_rows: int = 4096):
        if rows < 1 or dim < 1 or pool_rows < 1:
            raise ValueError("rows, dim, pool_rows must be >= 1")
        self.rows = rows
        self.dim = dim
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._pool = rng.standard_normal((min(pool_rows, rows), dim)).astype(np.float32) * 0.1

    def get_rows(self, ids: np.ndarray) -> np.ndarray:
        ids = self._check_ids(ids)
        out = self._pool[ids % self._pool.shape[0]].copy()
        stamp = ((ids * _HASH_MULT + self.seed) % _STAMP_PRIME).astype(np.float32)
        out[:, 0] = stamp / _STAMP_PRIME - 0.5
        return out


class MappedTableData(TableData):
    """A shard-local view of a parent table: local id ``l`` is parent row
    ``global_ids[l]``.

    This is the data half of the shard-local id remapping invariant (see
    ``docs/ARCHITECTURE.md``): a row shard stores the same raw vectors as
    the parent table, just re-indexed, so any backend serving the shard
    produces bit-identical per-row values to the parent serving the
    corresponding global ids.
    """

    def __init__(self, parent: TableData, global_ids: np.ndarray):
        global_ids = np.asarray(global_ids, dtype=np.int64)
        if global_ids.ndim != 1 or global_ids.size < 1:
            raise ValueError("global_ids must be a non-empty 1-D array")
        if global_ids.min() < 0 or global_ids.max() >= parent.rows:
            raise ValueError("global_ids out of parent range")
        self.parent = parent
        self.global_ids = global_ids
        self.rows = int(global_ids.size)
        self.dim = parent.dim

    def get_rows(self, ids: np.ndarray) -> np.ndarray:
        ids = self._check_ids(ids)
        return self.parent.get_rows(self.global_ids[ids])
