"""Embedding table data sources.

``DenseTableData`` holds an explicit float32 array (small tables, tests).
``VirtualTableData`` generates deterministic per-row vectors on demand
from a seeded pool, so the 16GB logical footprint of a million-row
one-vector-per-page table costs a few MB of host RAM.  Both produce
identical values every time for a given (seed, row), which is what lets
every backend's result be checked against the in-DRAM reference.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "TableData",
    "DenseTableData",
    "VirtualTableData",
    "MappedTableData",
    "UpdatableTableData",
]

_STAMP_PRIME = 1_000_003
_HASH_MULT = 2_654_435_761


class TableData(ABC):
    """Source of raw (pre-quantization) float32 row vectors."""

    rows: int
    dim: int

    @abstractmethod
    def get_rows(self, ids: np.ndarray) -> np.ndarray:
        """Return float32 ``[len(ids), dim]``; ids must be in range."""

    def _check_ids(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.rows):
            raise IndexError(
                f"row id out of range [0, {self.rows}) "
                f"(got min={ids.min()}, max={ids.max()})"
            )
        return ids


class DenseTableData(TableData):
    def __init__(self, values: np.ndarray):
        values = np.asarray(values, dtype=np.float32)
        if values.ndim != 2:
            raise ValueError("values must be 2-D [rows, dim]")
        self.values = values
        self.rows, self.dim = values.shape

    @classmethod
    def random(cls, rows: int, dim: int, seed: int = 0) -> "DenseTableData":
        rng = np.random.default_rng(seed)
        return cls(rng.standard_normal((rows, dim)).astype(np.float32) * 0.1)

    def get_rows(self, ids: np.ndarray) -> np.ndarray:
        ids = self._check_ids(ids)
        return self.values[ids].copy()


class VirtualTableData(TableData):
    """Deterministic synthetic rows: pooled base vectors plus a row stamp.

    ``row r`` is ``pool[r % pool_rows]`` with element 0 replaced by a
    row-unique hash value, so distinct rows are distinguishable (sum
    mismatches are detectable) while generation stays vectorized.
    """

    def __init__(self, rows: int, dim: int, seed: int = 0, pool_rows: int = 4096):
        if rows < 1 or dim < 1 or pool_rows < 1:
            raise ValueError("rows, dim, pool_rows must be >= 1")
        self.rows = rows
        self.dim = dim
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._pool = rng.standard_normal((min(pool_rows, rows), dim)).astype(np.float32) * 0.1

    def get_rows(self, ids: np.ndarray) -> np.ndarray:
        ids = self._check_ids(ids)
        out = self._pool[ids % self._pool.shape[0]].copy()
        stamp = ((ids * _HASH_MULT + self.seed) % _STAMP_PRIME).astype(np.float32)
        out[:, 0] = stamp / _STAMP_PRIME - 0.5
        return out


class UpdatableTableData(TableData):
    """A committed-state overlay making any base table data writable.

    Live embedding updates commit here at their simulated apply instant:
    ``apply`` records the new raw (pre-quantization) row vectors and
    every subsequent ``get_rows`` — from the host reference, the virtual
    page contents on flash, the device page cache and the NDP translate
    path, all of which read through the table's data object — returns
    the updated values.  Device page writes then proceed asynchronously
    purely for timing/aging; coherence never depends on them.

    Replicas share the wrapped object and row shards read through it
    via :class:`MappedTableData`, so one ``apply`` on the primary is
    visible everywhere.  ``vectorized=False`` switches to a dict-backed
    per-row reference implementation (for the scalar-vs-vector hot-path
    equivalence test); both modes are last-write-wins within a batch.
    """

    def __init__(self, base: TableData, vectorized: bool = True):
        self.base = base
        self.rows = base.rows
        self.dim = base.dim
        self.vectorized = vectorized
        # Sorted overlay: _ids ascending, _vals the committed vectors.
        self._ids = np.empty(0, dtype=np.int64)
        self._vals = np.empty((0, self.dim), dtype=np.float32)
        self._overlay: dict = {}
        self.updates_applied = 0
        self.rows_written = 0

    @property
    def overlay_rows(self) -> int:
        """Distinct rows currently overridden by updates."""
        if not self.vectorized:
            return len(self._overlay)
        return int(self._ids.size)

    def written_ids(self) -> np.ndarray:
        """Ascending global ids of every row ever updated."""
        if not self.vectorized:
            return np.asarray(sorted(self._overlay), dtype=np.int64)
        return self._ids.copy()

    def apply(self, ids: np.ndarray, values: np.ndarray) -> int:
        """Commit one update batch (last write wins); returns distinct rows."""
        ids = self._check_ids(ids)
        values = np.asarray(values, dtype=np.float32)
        if values.shape != (ids.size, self.dim):
            raise ValueError(
                f"values must be [{ids.size}, {self.dim}], got {values.shape}"
            )
        if ids.size == 0:
            return 0
        self.updates_applied += 1
        if not self.vectorized:
            distinct = len({int(g) for g in ids})
            for i in range(ids.size):
                self._overlay[int(ids[i])] = values[i].copy()
            self.rows_written += distinct
            return distinct
        # Last-write-wins dedupe: the first occurrence in the reversed
        # batch is the last write in batch order.
        uids, rev_first = np.unique(ids[::-1], return_index=True)
        take = ids.size - 1 - rev_first
        uvals = values[take]
        pos = np.searchsorted(self._ids, uids)
        if self._ids.size:
            clipped = np.minimum(pos, self._ids.size - 1)
            present = self._ids[clipped] == uids
        else:
            present = np.zeros(uids.size, dtype=bool)
        if present.any():
            self._vals[pos[present]] = uvals[present]
        new = ~present
        if new.any():
            self._ids = np.insert(self._ids, pos[new], uids[new])
            self._vals = np.insert(self._vals, pos[new], uvals[new], axis=0)
        self.rows_written += int(uids.size)
        return int(uids.size)

    def get_rows(self, ids: np.ndarray) -> np.ndarray:
        ids = self._check_ids(ids)
        out = self.base.get_rows(ids)
        if not self.vectorized:
            for i in range(ids.size):
                vec = self._overlay.get(int(ids[i]))
                if vec is not None:
                    out[i] = vec
            return out
        if self._ids.size and ids.size:
            pos = np.searchsorted(self._ids, ids)
            clipped = np.minimum(pos, self._ids.size - 1)
            hit = self._ids[clipped] == ids
            if hit.any():
                out[hit] = self._vals[pos[hit]]
        return out


class MappedTableData(TableData):
    """A shard-local view of a parent table: local id ``l`` is parent row
    ``global_ids[l]``.

    This is the data half of the shard-local id remapping invariant (see
    ``docs/ARCHITECTURE.md``): a row shard stores the same raw vectors as
    the parent table, just re-indexed, so any backend serving the shard
    produces bit-identical per-row values to the parent serving the
    corresponding global ids.
    """

    def __init__(self, parent: TableData, global_ids: np.ndarray):
        global_ids = np.asarray(global_ids, dtype=np.int64)
        if global_ids.ndim != 1 or global_ids.size < 1:
            raise ValueError("global_ids must be a non-empty 1-D array")
        if global_ids.min() < 0 or global_ids.max() >= parent.rows:
            raise ValueError("global_ids out of parent range")
        self.parent = parent
        self.global_ids = global_ids
        self.rows = int(global_ids.size)
        self.dim = parent.dim

    def get_rows(self, ids: np.ndarray) -> np.ndarray:
        ids = self._check_ids(ids)
        return self.parent.get_rows(self.global_ids[ids])
