"""Multi-table embedding stage.

End-to-end models look up many tables per batch; the paper overlaps the
per-table SLS operations using a pool of SLS workers matched to the
driver's IO queues.  The stage issues all table operations concurrently
(the simulated driver/device provide the real contention) and completes
when the last table finishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..sim.stats import Breakdown
from .backends.base import SlsBackend, SlsOpResult

__all__ = ["EmbStageResult", "EmbeddingStage"]


@dataclass
class EmbStageResult:
    """One embedding stage's output: per-table pooled values + accounting.

    ``per_shard`` is only populated by the serving layer's scatter-gather
    stage (:class:`~repro.serving.sharding.ShardedEmbeddingStage`): it
    maps shard index -> table name -> that shard's partial
    :class:`SlsOpResult` for this batch, while ``values``/``per_table``
    always hold the merged (full) result.
    """

    values: Dict[str, np.ndarray]
    per_table: Dict[str, SlsOpResult]
    start_time: float
    end_time: float
    breakdown: Breakdown = field(default_factory=Breakdown)
    per_shard: Dict[int, Dict[str, SlsOpResult]] = field(default_factory=dict)
    # Graceful degradation (sharded stage only): table name -> sorted
    # batch-bag indices whose lookups were skipped because their shard's
    # device is down; ``values`` holds partial sums for those bags.
    missing_by_table: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def latency(self) -> float:
        return self.end_time - self.start_time

    def stat_total(self, key: str) -> float:
        return sum(r.stats.get(key, 0.0) for r in self.per_table.values())


class EmbeddingStage:
    """Runs one batch of lookups across all tables of a model.

    ``sls_pool`` (optional — any object with the
    :class:`repro.serving.hostpool.HostSlsPool` ``acquire``/``release``
    contract) bounds how many per-table operations the host drives
    concurrently: each table op holds one pool worker from launch to
    completion.  ``None`` (default) keeps the seed's free overlap — all
    table ops launch immediately.
    """

    def __init__(self, backends: Dict[str, SlsBackend], sls_pool=None):
        if not backends:
            raise ValueError("need at least one table backend")
        self.backends = dict(backends)
        self.sls_pool = sls_pool
        sims = {id(b.system.sim) for b in self.backends.values()}
        if len(sims) != 1:
            raise ValueError("all backends must share one simulator")
        self.sim = next(iter(self.backends.values())).system.sim

    # ------------------------------------------------------------------
    def start(
        self,
        bags_by_table: Dict[str, Sequence[np.ndarray]],
        on_done: Callable[[EmbStageResult], None],
    ) -> None:
        unknown = set(bags_by_table) - set(self.backends)
        if unknown:
            raise KeyError(f"no backend for tables {sorted(unknown)}")
        start = self.sim.now
        names = list(bags_by_table.keys())
        results: Dict[str, SlsOpResult] = {}

        def table_done(name: str, result: SlsOpResult) -> None:
            results[name] = result
            if len(results) == len(names):
                breakdown = Breakdown()
                for r in results.values():
                    breakdown.merge(r.breakdown)
                on_done(
                    EmbStageResult(
                        values={n: results[n].values for n in names},
                        per_table=results,
                        start_time=start,
                        end_time=self.sim.now,
                        breakdown=breakdown,
                    )
                )

        if not names:
            self.sim.call_soon(
                lambda: on_done(
                    EmbStageResult({}, {}, start, self.sim.now, Breakdown())
                )
            )
            return
        for name in names:
            backend = self.backends[name]
            if self.sls_pool is None:
                backend.start(
                    bags_by_table[name],
                    lambda result, _n=name: table_done(_n, result),
                )
                continue

            # One host SLS worker drives this table op from launch to
            # completion; with a bounded pool the launch itself may wait.
            def launch(_n=name, _b=backend, _bags=bags_by_table[name]):
                def op_done(result, _n=_n):
                    self.sls_pool.release()
                    table_done(_n, result)

                _b.start(_bags, op_done)

            self.sls_pool.acquire(launch)

    def run_sync(self, bags_by_table: Dict[str, Sequence[np.ndarray]]) -> EmbStageResult:
        box: List[EmbStageResult] = []
        self.start(bags_by_table, box.append)
        self.sim.run_until(lambda: bool(box))
        return box[0]
