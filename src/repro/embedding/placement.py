"""Heat-driven row placement: profiling, tracking, and online migration.

The pieces that turn :class:`~repro.ftl.layout.FrequencyLayout` from a
static load-time packing into a live policy:

* :func:`heat_from_rows` / :func:`profile_heat` — build the per-table
  frequency histogram that seeds the layout (PAPER.md Fig. 4 locality is
  exactly what these capture);
* :class:`HeatTracker` — a decayed online counter fed from the backend
  request path, so the "current" heatmap drifts with popularity;
* :class:`LayoutMigrator` — the GC piggyback.  Every reclaimed victim
  block already paid flash reads + programs to relocate its live pages;
  the migrator rides along and re-packs the *rows* stored in those pages
  against the tracker's current heat, bounded by a per-cycle row budget.
  Because table pages are lazy (:class:`~repro.embedding.table.
  TablePageContent` resolves slots through the layout at read time), the
  re-pack moves zero additional bytes — it only re-points the row
  bijection and invalidates the device vector cache for the ranks whose
  occupant changed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..traces.analysis import row_frequencies
from .table import EmbeddingTable

__all__ = [
    "HeatTracker",
    "LayoutMigrator",
    "heat_from_rows",
    "profile_heat",
]


def heat_from_rows(rows: np.ndarray, num_rows: int) -> np.ndarray:
    """Per-row access counts (the frequency histogram layout packs by)."""
    return row_frequencies(rows, num_rows)


def profile_heat(
    sampler,
    num_rows: int,
    batches: int,
    batch_size: int = 64,
) -> np.ndarray:
    """Histogram ``batches`` draws from an index ``sampler``.

    ``sampler`` is any callable returning an int64 id array per call
    (``repro.workload``'s ``IndexSampler.sample`` bound with a size, or a
    bag generator adapter).  Deterministic given a seeded sampler.
    """
    heat = np.zeros(num_rows, dtype=np.float64)
    for _ in range(max(0, batches)):
        drawn = np.asarray(sampler(batch_size), dtype=np.int64).reshape(-1)
        heat += heat_from_rows(drawn, num_rows)
    return heat


class HeatTracker:
    """Decayed per-row access counter (deterministic, simulation-safe).

    ``record`` is called from the backend request funnel with the flat
    row ids of each op.  Every ``decay_every`` recorded rows the whole
    histogram is scaled by ``decay`` so old popularity fades and a
    mid-scenario shift becomes visible to the migrator within a bounded
    number of requests (no wall-clock involved — decay ticks on traffic,
    which keeps replays reproducible).
    """

    def __init__(
        self,
        num_rows: int,
        decay: float = 0.5,
        decay_every: int = 50_000,
        initial: Optional[np.ndarray] = None,
    ):
        if num_rows < 1:
            raise ValueError("num_rows must be >= 1")
        if not 0.0 <= decay <= 1.0:
            raise ValueError("decay must be in [0, 1]")
        if decay_every < 1:
            raise ValueError("decay_every must be >= 1")
        self.num_rows = num_rows
        self.decay = decay
        self.decay_every = decay_every
        self.heat = np.zeros(num_rows, dtype=np.float64)
        if initial is not None:
            initial = np.asarray(initial, dtype=np.float64)
            if initial.shape != (num_rows,):
                raise ValueError("initial heat shape mismatch")
            self.heat += initial
        self.rows_recorded = 0
        self._since_decay = 0

    def record(self, rows: np.ndarray) -> None:
        rows = np.asarray(rows, dtype=np.int64).reshape(-1)
        if rows.size == 0:
            return
        np.add.at(self.heat, rows, 1.0)
        self.rows_recorded += int(rows.size)
        self._since_decay += int(rows.size)
        if self._since_decay >= self.decay_every:
            self.heat *= self.decay
            self._since_decay = 0


class _TableEntry:
    """Per-table state the migrator needs to map LPNs back to ranks."""

    def __init__(self, table: EmbeddingTable, tracker: HeatTracker):
        if not table.attached:
            raise RuntimeError("register tables after attach")
        self.table = table
        self.tracker = tracker
        device = table.device
        self.base_lpn = table.base_lba // device.ftl.lbas_per_page
        self.num_pages = table.spec.table_pages(table.page_bytes)


class LayoutMigrator:
    """GC-piggybacked re-packer; install as ``ftl.layout_migrator``.

    ``on_block_reclaimed(lpns)`` receives the valid LPNs of every victim
    block GC reclaims.  LPNs belonging to a registered table with a
    :class:`FrequencyLayout` select that table's page ranks; the ranks
    are re-sorted by the tracker's current heat (victim-local: rows only
    trade places within the reclaimed pages, so no page outside the set
    GC already rewrote changes content).  At most ``budget_rows`` rows
    are considered per GC cycle; the device-side vector cache is
    invalidated for exactly the ranks whose occupant changed.
    """

    def __init__(self, budget_rows: int = 256):
        if budget_rows < 0:
            raise ValueError("budget_rows must be >= 0")
        self.budget_rows = budget_rows
        self.entries: List[_TableEntry] = []
        self.repacks = 0
        self.rows_repacked = 0
        self.rows_skipped_budget = 0
        self.cache_invalidations = 0

    def register(self, table: EmbeddingTable, tracker: HeatTracker) -> None:
        if tracker.num_rows != table.spec.rows:
            raise ValueError("tracker size does not match table rows")
        self.entries.append(_TableEntry(table, tracker))

    # -- GC hook --------------------------------------------------------
    def on_block_reclaimed(self, lpns: Sequence[int]) -> None:
        if not lpns or self.budget_rows == 0:
            return
        lpn_arr = np.asarray(list(lpns), dtype=np.int64)
        for entry in self.entries:
            layout = entry.table.layout
            if layout is None or not hasattr(layout, "repack_ranks"):
                continue
            in_table = (lpn_arr >= entry.base_lpn) & (
                lpn_arr < entry.base_lpn + entry.num_pages
            )
            if not np.any(in_table):
                continue
            pages = np.unique(lpn_arr[in_table] - entry.base_lpn)
            rpp = entry.table.rows_per_page
            ranks = (pages[:, None] * rpp + np.arange(rpp)[None, :]).reshape(-1)
            ranks = ranks[ranks < entry.table.spec.rows]
            if ranks.size > self.budget_rows:
                # Bound work per GC cycle: re-pack whole pages up to the
                # budget, skip the rest (the next cycle that reclaims
                # them catches up).
                keep_pages = max(1, self.budget_rows // rpp)
                self.rows_skipped_budget += int(
                    ranks.size - min(ranks.size, keep_pages * rpp)
                )
                ranks = ranks[: keep_pages * rpp]
            moved = layout.repack_ranks(ranks, entry.tracker.heat)
            if moved.size:
                self.repacks += 1
                self.rows_repacked += int(moved.size)
                self._invalidate(entry, moved)

    def _invalidate(self, entry: _TableEntry, moved_ranks: np.ndarray) -> None:
        """Drop re-pointed ranks from the device's materialized vector cache.

        Host-side caches key by *external* id with unchanged values, so
        only the device cache (keyed by internal rank) can go stale.
        """
        device = entry.table.device
        ndp = getattr(device, "ndp", None)
        emb_cache = getattr(ndp, "emb_cache", None)
        if emb_cache is None:
            return
        self.cache_invalidations += int(
            emb_cache.invalidate_many(entry.base_lpn, moved_ranks)
        )
