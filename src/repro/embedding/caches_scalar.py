"""Scalar (OrderedDict/dict) reference caches — the golden baseline.

These are the pre-vectorization implementations of the host-side caches,
kept verbatim as the behavioural reference: the array-based caches in
:mod:`repro.embedding.caches` must produce identical hit/miss sequences,
eviction counts and final contents on any operation sequence
(``tests/hotpath/test_cache_equivalence.py``), and
``benchmarks/bench_hotpath.py`` times them as the "before" side of the
speedup report.  Do not optimize this module.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

import numpy as np

__all__ = ["ScalarSetAssociativeLru", "ScalarStaticPartitionCache"]


class ScalarSetAssociativeLru:
    """Set-associative LRU cache of row -> vector (per-key OrderedDicts)."""

    def __init__(self, capacity: int, ways: int = 16):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        if ways < 1:
            raise ValueError("ways must be >= 1")
        self.capacity = capacity
        self.ways = min(ways, capacity) if capacity else ways
        # Ceil, matching SetAssociativeLru: a non-multiple capacity must
        # not shrink the cache below its nominal size.
        self.sets = (
            max(1, -(-capacity // max(1, self.ways))) if capacity else 0
        )
        self._sets: List["OrderedDict[int, np.ndarray]"] = [
            OrderedDict() for _ in range(self.sets)
        ]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def _set_of(self, key: int) -> "OrderedDict[int, np.ndarray]":
        return self._sets[key % self.sets]

    def lookup(self, key: int) -> Optional[np.ndarray]:
        if self.capacity == 0:
            self.misses += 1
            return None
        bucket = self._set_of(key)
        value = bucket.get(key)
        if value is None:
            self.misses += 1
            return None
        bucket.move_to_end(key)
        self.hits += 1
        return value

    def insert(self, key: int, value: np.ndarray) -> None:
        if self.capacity == 0:
            return
        bucket = self._set_of(key)
        if key in bucket:
            bucket.move_to_end(key)
            bucket[key] = value
            return
        if len(bucket) >= self.ways:
            bucket.popitem(last=False)
            self.evictions += 1
        bucket[key] = value

    def invalidate(self, key: int) -> bool:
        """Drop ``key`` if cached; returns whether it was resident."""
        if self.capacity == 0:
            return False
        bucket = self._set_of(key)
        if key not in bucket:
            return False
        del bucket[key]
        self.invalidations += 1
        return True

    def invalidate_many(self, keys: np.ndarray) -> int:
        dropped = 0
        for key in np.asarray(keys, dtype=np.int64).tolist():
            if self.invalidate(key):
                dropped += 1
        return dropped

    def record_sequential_hit(self) -> None:
        self.hits += 1

    def __contains__(self, key: int) -> bool:
        if self.capacity == 0:
            return False
        return key in self._set_of(key)

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def contents(self) -> Dict[int, np.ndarray]:
        """Key -> value snapshot (equivalence-test hook)."""
        out: Dict[int, np.ndarray] = {}
        for bucket in self._sets:
            out.update(bucket)
        return out

    def recency_order(self) -> List[List[int]]:
        """Per-set keys from least- to most-recently used."""
        return [list(bucket.keys()) for bucket in self._sets]


class ScalarStaticPartitionCache:
    """Read-only host partition, dict-indexed (reference implementation)."""

    def __init__(self, rows: np.ndarray, vectors: np.ndarray):
        rows = np.asarray(rows, dtype=np.int64)
        if vectors.shape[0] != rows.size:
            raise ValueError("rows/vectors length mismatch")
        self._index: Dict[int, int] = {int(r): i for i, r in enumerate(rows)}
        self._vectors = np.asarray(vectors, dtype=np.float32)
        self.hits = 0
        self.misses = 0
        self.updates = 0

    def lookup(self, row: int) -> Optional[np.ndarray]:
        idx = self._index.get(row)
        if idx is None:
            self.misses += 1
            return None
        self.hits += 1
        return self._vectors[idx]

    def update_rows(self, rows: np.ndarray, vectors: np.ndarray) -> int:
        """Write-through for member rows, one at a time (last write wins)."""
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.shape[0] != len(rows):
            raise ValueError("rows/vectors length mismatch")
        written = 0
        for i, row in enumerate(rows):
            idx = self._index.get(int(row))
            if idx is not None:
                self._vectors[idx] = vectors[i]
                written += 1
        self.updates += written
        return written

    def partition_mask(self, rows: np.ndarray) -> np.ndarray:
        mask = np.fromiter(
            (int(r) in self._index for r in rows), count=len(rows), dtype=bool
        )
        n_hit = int(mask.sum())
        self.hits += n_hit
        self.misses += len(rows) - n_hit
        return mask

    def vectors_for(self, rows: np.ndarray) -> np.ndarray:
        idxs = np.asarray([self._index[int(r)] for r in rows], dtype=np.int64)
        return self._vectors[idxs]

    @property
    def size(self) -> int:
        return len(self._index)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.updates = 0
