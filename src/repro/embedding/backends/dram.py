"""DRAM SLS backend: the Caffe2 SparseLengthsSum baseline."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ...sim.kernel import Timeout
from ...sim.stats import Breakdown
from .base import SlsBackend, SlsOpResult, flatten_bags

__all__ = ["DramSlsBackend"]


class DramSlsBackend(SlsBackend):
    """Tables resident in host DRAM; latency from the host cost model."""

    def _start(self, bags: Sequence[np.ndarray], on_done: Callable[[SlsOpResult], None]) -> None:
        sim = self.system.sim
        start = sim.now
        rows, _rids = flatten_bags(bags)
        values = self.table.ref_sls(bags)
        latency = self.system.host_cpu.dram_sls_time(
            n_lookups=int(rows.size), row_bytes=self.table.spec.row_bytes
        )
        breakdown = Breakdown({"host_gather": latency})
        stats = {"lookups": float(rows.size)}

        def finish() -> None:
            on_done(
                SlsOpResult(
                    values=values,
                    start_time=start,
                    end_time=sim.now,
                    breakdown=breakdown,
                    stats=stats,
                )
            )

        sim.schedule(latency, finish)
