"""RecSSD NDP SLS backend.

Offloads the gather + accumulate to the SSD's FTL via the NDP session.
With a static host partition (Section 4.2), profiled-hot rows are summed
host-side and the SSD handles only the cold remainder; the returned
partial sums are merged on the host — exactly the post-processing step
the paper describes.

The hot/cold split runs batch-first by default: one vectorized
membership probe over the flattened bags, a segment-sum for the per-bag
hot partials, and a boundary split for the cold remainder — no per-bag
Python loop.  ``vectorized=False`` keeps the scalar reference
implementation for the golden-equivalence tests and benchmarks.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ...core.vecops import segment_sum
from ...sim.stats import Breakdown
from ..caches import StaticPartitionCache
from ..table import EmbeddingTable
from .base import SlsBackend, SlsOpResult, flatten_bags

__all__ = ["NdpSlsBackend"]


class NdpSlsBackend(SlsBackend):
    def __init__(
        self,
        system,
        table: EmbeddingTable,
        partition: Optional[StaticPartitionCache] = None,
        vectorized: bool = True,
    ):
        super().__init__(system, table)
        self.partition = partition
        self.vectorized = vectorized
        # Host-path fallback used while the device's NDP engine is down
        # (fault injection); built lazily so healthy runs never touch it.
        self._fallback = None
        self.fallback_ops = 0

    # ------------------------------------------------------------------
    def _split_partition(
        self,
        bags: Sequence[np.ndarray],
        partial: np.ndarray,
        breakdown: Breakdown,
        stats: Dict[str, float],
    ) -> tuple[List[np.ndarray], float]:
        """Host half of Section 4.2: sum profiled-hot rows host-side.

        Fills ``partial`` with the per-result hot sums and returns the cold
        remainder bags plus the host CPU time the split cost.
        """
        if self.vectorized:
            return self._split_partition_vectorized(bags, partial, breakdown, stats)
        return self._split_partition_scalar(bags, partial, breakdown, stats)

    def _split_partition_vectorized(
        self,
        bags: Sequence[np.ndarray],
        partial: np.ndarray,
        breakdown: Breakdown,
        stats: Dict[str, float],
    ) -> tuple[List[np.ndarray], float]:
        host_cpu = self.system.host_cpu
        table = self.table
        host_cost = 0.0
        if self.partition is not None:
            rows, rids = flatten_bags(bags)
            mask = self.partition.partition_mask(rows)
            hot_rows = rows[mask]
            partition_hits = int(hot_rows.size)
            if partition_hits:
                # rids ascend (bags flatten in order), so the per-bag hot
                # sums are one segment reduce.
                partial += segment_sum(
                    self.partition.vectors_for(hot_rows), rids[mask], len(bags)
                )
            cold_rows = rows[~mask]
            if len(bags):
                cold_counts = np.bincount(rids[~mask], minlength=len(bags))
                cold_bags = np.split(cold_rows, np.cumsum(cold_counts)[:-1])
            else:
                cold_bags = []
            host_cost = host_cpu.accumulate_time(partition_hits, table.spec.row_bytes)
            breakdown.add("host_partition", host_cost)
            total_lookups = int(rows.size)
        else:
            cold_bags = [np.asarray(b, dtype=np.int64).reshape(-1) for b in bags]
            total_lookups = int(sum(b.size for b in cold_bags))
            partition_hits = 0
        stats["lookups"] = float(total_lookups)
        stats["partition_hits"] = float(partition_hits)
        stats["cold_lookups"] = float(sum(b.size for b in cold_bags))
        return list(cold_bags), host_cost

    def _split_partition_scalar(
        self,
        bags: Sequence[np.ndarray],
        partial: np.ndarray,
        breakdown: Breakdown,
        stats: Dict[str, float],
    ) -> tuple[List[np.ndarray], float]:
        """Scalar reference (golden baseline; do not optimize)."""
        host_cpu = self.system.host_cpu
        table = self.table
        cold_bags: List[np.ndarray] = []
        total_lookups = 0
        partition_hits = 0
        host_cost = 0.0
        if self.partition is not None:
            for i, bag in enumerate(bags):
                bag = np.asarray(bag, dtype=np.int64).reshape(-1)
                total_lookups += bag.size
                if bag.size == 0:
                    cold_bags.append(bag)
                    continue
                mask = self.partition.partition_mask(bag)
                hot = bag[mask]
                if hot.size:
                    partial[i] = self.partition.vectors_for(hot).sum(
                        axis=0, dtype=np.float32
                    )
                    partition_hits += int(hot.size)
                cold_bags.append(bag[~mask])
            host_cost = host_cpu.accumulate_time(partition_hits, table.spec.row_bytes)
            breakdown.add("host_partition", host_cost)
        else:
            cold_bags = [np.asarray(b, dtype=np.int64).reshape(-1) for b in bags]
            total_lookups = int(sum(b.size for b in cold_bags))
        stats["lookups"] = float(total_lookups)
        stats["partition_hits"] = float(partition_hits)
        stats["cold_lookups"] = float(sum(b.size for b in cold_bags))
        return cold_bags, host_cost

    def _start(self, bags: Sequence[np.ndarray], on_done: Callable[[SlsOpResult], None]) -> None:
        device = getattr(self.table, "device", None)
        if device is not None and getattr(device.ndp, "down", False):
            self._start_fallback(bags, on_done)
            return
        sim = self.system.sim
        host_cpu = self.system.host_cpu
        table = self.table
        start = sim.now
        breakdown = Breakdown()
        stats: Dict[str, float] = {}
        n_results = len(bags)
        partial = np.zeros((n_results, table.spec.dim), dtype=np.float32)

        cold_bags, split_cost = self._split_partition(bags, partial, breakdown, stats)
        host_cost = host_cpu.config.op_overhead_s + split_cost

        if stats["cold_lookups"] == 0:
            # Everything was served from the host partition.
            def finish_local() -> None:
                on_done(
                    SlsOpResult(
                        values=partial,
                        start_time=start,
                        end_time=sim.now,
                        breakdown=breakdown,
                        stats=stats,
                    )
                )

            sim.schedule(host_cost, finish_local)
            return

        config = table.make_sls_config(cold_bags)

        def ndp_done(payload, timing) -> None:
            breakdown.merge(payload.breakdown)
            stats["flash_pages_read"] = float(payload.flash_pages_read)
            stats["ssd_page_cache_hits"] = float(payload.page_cache_hits)
            stats["emb_cache_hits"] = float(payload.emb_cache_hits)
            if payload.uncorrectable_pages:
                stats["uncorrectable_pages"] = float(payload.uncorrectable_pages)
            # Post-process: merge SSD partial sums with host partition sums.
            merge_cost = host_cpu.accumulate_time(n_results, table.spec.row_bytes)
            breakdown.add("host_merge", merge_cost)
            values = payload.values + partial

            def finish() -> None:
                on_done(
                    SlsOpResult(
                        values=values,
                        start_time=start,
                        end_time=sim.now,
                        breakdown=breakdown,
                        stats=stats,
                    )
                )

            sim.schedule(host_cost + merge_cost, finish)

        self.system.session_for(self.table.device).sls(config, ndp_done)

    # ------------------------------------------------------------------
    def _start_fallback(
        self, bags: Sequence[np.ndarray], on_done: Callable[[SlsOpResult], None]
    ) -> None:
        """NDP engine down: serve via the host-orchestrated SSD read path.

        Graceful degradation, not failure — the data is still on the
        device, only the in-storage compute is gone, so the host reads
        pages and accumulates itself (slower, but correct).  Results are
        tagged ``ndp_fallback`` so stats can separate the two paths.
        """
        from .ssd import SsdSlsBackend

        if self._fallback is None:
            self._fallback = SsdSlsBackend(
                self.system, self.table, vectorized=self.vectorized
            )
        self.fallback_ops += 1

        def tagged(result: SlsOpResult) -> None:
            result.stats["ndp_fallback"] = 1.0
            on_done(result)

        self._fallback._start(bags, tagged)

    def reset_stats(self) -> None:
        super().reset_stats()
        self.fallback_ops = 0
        if self._fallback is not None:
            self._fallback.reset_stats()
