"""RecSSD NDP SLS backend.

Offloads the gather + accumulate to the SSD's FTL via the NDP session.
With a static host partition (Section 4.2), profiled-hot rows are summed
host-side and the SSD handles only the cold remainder; the returned
partial sums are merged on the host — exactly the post-processing step
the paper describes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ...sim.stats import Breakdown
from ..caches import StaticPartitionCache
from ..table import EmbeddingTable
from .base import SlsBackend, SlsOpResult

__all__ = ["NdpSlsBackend"]


class NdpSlsBackend(SlsBackend):
    def __init__(
        self,
        system,
        table: EmbeddingTable,
        partition: Optional[StaticPartitionCache] = None,
    ):
        super().__init__(system, table)
        self.partition = partition

    # ------------------------------------------------------------------
    def start(self, bags: Sequence[np.ndarray], on_done: Callable[[SlsOpResult], None]) -> None:
        self.ops += 1
        sim = self.system.sim
        host_cpu = self.system.host_cpu
        table = self.table
        start = sim.now
        breakdown = Breakdown()
        stats: Dict[str, float] = {}
        n_results = len(bags)
        partial = np.zeros((n_results, table.spec.dim), dtype=np.float32)
        host_cost = host_cpu.config.op_overhead_s

        cold_bags: List[np.ndarray] = []
        total_lookups = 0
        partition_hits = 0
        if self.partition is not None:
            for i, bag in enumerate(bags):
                bag = np.asarray(bag, dtype=np.int64).reshape(-1)
                total_lookups += bag.size
                if bag.size == 0:
                    cold_bags.append(bag)
                    continue
                mask = self.partition.partition_mask(bag)
                hot = bag[mask]
                if hot.size:
                    partial[i] = self.partition.vectors_for(hot).sum(
                        axis=0, dtype=np.float32
                    )
                    partition_hits += int(hot.size)
                cold_bags.append(bag[~mask])
            host_cost += host_cpu.accumulate_time(partition_hits, table.spec.row_bytes)
            breakdown.add(
                "host_partition",
                host_cpu.accumulate_time(partition_hits, table.spec.row_bytes),
            )
        else:
            cold_bags = [np.asarray(b, dtype=np.int64).reshape(-1) for b in bags]
            total_lookups = int(sum(b.size for b in cold_bags))

        stats["lookups"] = float(total_lookups)
        stats["partition_hits"] = float(partition_hits)
        n_cold = int(sum(b.size for b in cold_bags))
        stats["cold_lookups"] = float(n_cold)

        if n_cold == 0:
            # Everything was served from the host partition.
            def finish_local() -> None:
                on_done(
                    SlsOpResult(
                        values=partial,
                        start_time=start,
                        end_time=sim.now,
                        breakdown=breakdown,
                        stats=stats,
                    )
                )

            sim.schedule(host_cost, finish_local)
            return

        config = table.make_sls_config(cold_bags)

        def ndp_done(payload, timing) -> None:
            breakdown.merge(payload.breakdown)
            stats["flash_pages_read"] = float(payload.flash_pages_read)
            stats["ssd_page_cache_hits"] = float(payload.page_cache_hits)
            stats["emb_cache_hits"] = float(payload.emb_cache_hits)
            # Post-process: merge SSD partial sums with host partition sums.
            merge_cost = host_cpu.accumulate_time(n_results, table.spec.row_bytes)
            breakdown.add("host_merge", merge_cost)
            values = payload.values + partial

            def finish() -> None:
                on_done(
                    SlsOpResult(
                        values=values,
                        start_time=start,
                        end_time=sim.now,
                        breakdown=breakdown,
                        stats=stats,
                    )
                )

            sim.schedule(host_cost + merge_cost, finish)

        self.system.session_for(self.table.device).sls(config, ndp_done)
