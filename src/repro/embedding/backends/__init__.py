"""SLS storage backends: DRAM reference, baseline SSD, RecSSD NDP."""

from .base import SlsBackend, SlsOpResult, flatten_bags
from .dram import DramSlsBackend
from .ndp import NdpSlsBackend
from .ssd import SsdSlsBackend

__all__ = [
    "SlsBackend",
    "SlsOpResult",
    "flatten_bags",
    "DramSlsBackend",
    "NdpSlsBackend",
    "SsdSlsBackend",
]
