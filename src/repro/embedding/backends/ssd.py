"""Baseline SSD SLS backend: conventional NVMe block reads + host accumulate.

This is the "COTS SSD" configuration of the paper: the host computes
which logical blocks hold the needed vectors, issues one conventional
read per (deduplicated) block run through the user-space driver, extracts
the vectors as payloads return, and accumulates on the host CPU.  An
optional host-DRAM LRU cache filters lookups first (Fig 10 baseline).

The default hot path is batch-first: the cache filter, LBA-span
grouping, per-command vector extraction and cache refill all run as
numpy array operations — no per-row Python between the serving layer
and the driver.  ``vectorized=False`` selects the scalar reference
implementation (identical simulated behaviour, kept for the
golden-equivalence tests and the hot-path benchmark's "before" side).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...core.extract import extract_vectors, extract_vectors_many
from ...core.vecops import group_slices, scatter_add_vectors, segment_sum
from ...sim.stats import Breakdown
from ..caches import SetAssociativeLru
from ..table import EmbeddingTable, TablePageContent
from .base import SlsBackend, SlsOpResult, flatten_bags

__all__ = ["SsdSlsBackend"]


class SsdSlsBackend(SlsBackend):
    def __init__(
        self,
        system,
        table: EmbeddingTable,
        host_cache: Optional[SetAssociativeLru] = None,
        coalesce: bool = False,
        max_coalesce_lbas: int = 32,
        vectorized: bool = True,
    ):
        super().__init__(system, table)
        self.host_cache = host_cache
        self.coalesce = coalesce
        self.max_coalesce_lbas = max_coalesce_lbas
        self.vectorized = vectorized

    # ------------------------------------------------------------------
    def _start(self, bags: Sequence[np.ndarray], on_done: Callable[[SlsOpResult], None]) -> None:
        if self.vectorized:
            self._start_vectorized(bags, on_done)
        else:
            self._start_scalar(bags, on_done)

    # ------------------------------------------------------------------
    # Vectorized hot path
    # ------------------------------------------------------------------
    def _start_vectorized(
        self, bags: Sequence[np.ndarray], on_done: Callable[[SlsOpResult], None]
    ) -> None:
        sim = self.system.sim
        driver = self.system.driver_for(self.table.device)
        host_cpu = self.system.host_cpu
        table = self.table
        start = sim.now
        rows, rids = flatten_bags(bags)
        values = np.zeros((len(bags), table.spec.dim), dtype=np.float32)
        breakdown = Breakdown()
        stats: Dict[str, float] = {
            "lookups": float(rows.size),
            "cache_hits": 0.0,
            "commands": 0.0,
        }
        host_tail = host_cpu.config.op_overhead_s

        # ---- host cache filter (one batched probe) -----------------------
        if self.host_cache is not None and rows.size:
            hit_mask, hit_vecs = self.host_cache.probe_filter(rows)
            if hit_vecs is not None:
                n_hits = hit_vecs.shape[0]
                values += segment_sum(hit_vecs, rids[hit_mask], len(bags))
                cost = host_cpu.accumulate_time(n_hits, table.spec.row_bytes)
                breakdown.add("cache_hit_accumulate", cost)
                host_tail += cost
                stats["cache_hits"] = float(n_hits)
                keep = ~hit_mask
                rows = rows[keep]
                rids = rids[keep]

        # Per-lookup index handling cost on the host.
        host_tail += rows.size * host_cpu.config.sls_per_lookup_s

        if rows.size == 0:
            self._finish(sim, host_tail, values, start, breakdown, stats, on_done)
            return

        # ---- group misses by LBA run (mask/unique, no dict loop) ---------
        # Translate once to storage ranks: spans, page indices and slots
        # all address the (possibly heat-packed) physical placement,
        # while ``rows`` keeps the external ids for cache keys/values.
        srows = table.storage_ids(rows)
        spans = table.lba_span_of_storage(srows)  # [n, 2] (first_lba, nlb)
        encode = int(spans[:, 1].max()) + 1
        uniq_keys, member_order, bounds = group_slices(
            spans[:, 0] * encode + spans[:, 1]
        )
        span_first = uniq_keys // encode
        span_nlb = uniq_keys % encode
        commands = self._plan_command_ranges(span_first, span_nlb)
        stats["commands"] = float(len(commands))
        stats["unique_blocks"] = float(uniq_keys.size)

        pending = {"n": len(commands), "accumulate_cost": 0.0}
        rpp = table.rows_per_page
        page_bytes = table.page_bytes
        base_lpn = (table.base_lba * table.lba_bytes) // page_bytes
        quant = table.spec.quant
        dim = table.spec.dim

        # Miss vectors, pre-gathered once for the whole op.  Valid whenever
        # a command's pages are this table's virtual (preloaded) images —
        # extraction from those is definitionally ``table.get_rows``, so
        # the per-command work collapses to an array slice.  Commands whose
        # pages were rewritten through the IO path (raw buffers) fall back
        # to true extraction.
        prefetch: List[Optional[np.ndarray]] = [None] if (
            rows.size and int(rows.min()) >= 0 and int(rows.max()) < table.spec.rows
        ) else []

        def prefetched() -> np.ndarray:
            if prefetch[0] is None:
                prefetch[0] = table.get_rows(rows)
            return prefetch[0]

        def make_handler(member_idx: np.ndarray):
            def handle(cpl) -> None:
                if not cpl.ok:
                    raise RuntimeError(f"baseline SLS read failed: {cpl.status}")
                got_rows = rows[member_idx]
                got_srows = srows[member_idx]
                got_rids = rids[member_idx]
                segments = cpl.payload.segments
                bad_lpns = [seg.lpn for seg in segments if seg.content is None]
                if bad_lpns:
                    # Uncorrectable pages: their rows contribute zeros and
                    # must not be inserted into the host cache (that would
                    # pin zeros past the fault).  Count them for quality
                    # accounting; the op still completes.
                    ok = ~np.isin(
                        base_lpn + got_srows // rpp,
                        np.asarray(bad_lpns, dtype=np.int64),
                    )
                    stats["uncorrectable_rows"] = stats.get(
                        "uncorrectable_rows", 0.0
                    ) + float(got_rows.size - int(np.count_nonzero(ok)))
                    got_rows = got_rows[ok]
                    got_srows = got_srows[ok]
                    got_rids = got_rids[ok]
                if got_rows.size:
                    if not bad_lpns and prefetch and all(
                        type(seg.content) is TablePageContent
                        and seg.content.table is table
                        for seg in segments
                    ):
                        vecs = prefetched()[member_idx]
                    elif len(segments) == 1:
                        # Single-page command (every non-coalesced command):
                        # one direct extract, no grouping machinery.
                        vecs = extract_vectors(
                            segments[0].content, got_srows % rpp, dim, rpp, quant
                        )
                    else:
                        content_by_lpn = {seg.lpn: seg.content for seg in segments}
                        vecs = extract_vectors_many(
                            content_by_lpn,
                            base_lpn + got_srows // rpp,
                            got_srows % rpp,
                            dim,
                            rpp,
                            quant,
                        )
                    scatter_add_vectors(values, got_rids, vecs)
                    if self.host_cache is not None:
                        self.host_cache.insert_many(got_rows, vecs)
                pending["accumulate_cost"] += host_cpu.accumulate_time(
                    got_rows.size, table.spec.row_bytes
                )
                pending["n"] -= 1
                if pending["n"] == 0:
                    io_wait = sim.now - start
                    breakdown.add("io_wait", io_wait)
                    breakdown.add("host_accumulate", pending["accumulate_cost"])
                    self._finish(
                        sim,
                        host_tail + pending["accumulate_cost"],
                        values,
                        start,
                        breakdown,
                        stats,
                        on_done,
                    )

            return handle

        for slba, nlb, lo, hi in commands:
            driver.read(slba, nlb, make_handler(member_order[bounds[lo] : bounds[hi]]))

    def _plan_command_ranges(
        self, span_first: np.ndarray, span_nlb: np.ndarray
    ) -> List[Tuple[int, int, int, int]]:
        """Sorted unique spans -> ``(slba, nlb, span_lo, span_hi)`` commands.

        Same coalescing rule as :meth:`_plan_commands`; members are the
        half-open unique-span index range (consecutive, since commands
        merge sorted runs).
        """
        n = span_first.size
        if n == 0:
            return []
        if not self.coalesce:
            return [
                (int(span_first[i]), int(span_nlb[i]), i, i + 1) for i in range(n)
            ]
        commands: List[Tuple[int, int, int, int]] = []
        cur_start = int(span_first[0])
        cur_nlb = int(span_nlb[0])
        lo = 0
        for i in range(1, n):
            lba = int(span_first[i])
            nlb = int(span_nlb[i])
            if (lba + nlb - cur_start) <= self.max_coalesce_lbas:
                cur_nlb = max(cur_nlb, lba + nlb - cur_start)
            else:
                commands.append((cur_start, cur_nlb, lo, i))
                cur_start, cur_nlb = lba, nlb
                lo = i
        commands.append((cur_start, cur_nlb, lo, n))
        return commands

    # ------------------------------------------------------------------
    # Scalar reference path (golden baseline; do not optimize)
    # ------------------------------------------------------------------
    def _start_scalar(
        self, bags: Sequence[np.ndarray], on_done: Callable[[SlsOpResult], None]
    ) -> None:
        sim = self.system.sim
        driver = self.system.driver_for(self.table.device)
        host_cpu = self.system.host_cpu
        table = self.table
        start = sim.now
        rows, rids = flatten_bags(bags)
        values = np.zeros((len(bags), table.spec.dim), dtype=np.float32)
        breakdown = Breakdown()
        stats: Dict[str, float] = {
            "lookups": float(rows.size),
            "cache_hits": 0.0,
            "commands": 0.0,
        }
        host_tail = host_cpu.config.op_overhead_s

        # ---- host cache filter -------------------------------------------
        if self.host_cache is not None and rows.size:
            hit_vecs: List[np.ndarray] = []
            hit_rids: List[int] = []
            miss_mask = np.ones(rows.size, dtype=bool)
            missed_rows: set = set()
            for i in range(rows.size):
                row = int(rows[i])
                if row in missed_rows:
                    # Sequential execution would have fetched this row by
                    # now; the value still comes from the (shared) page
                    # fetch below, but it counts as a cache hit.
                    self.host_cache.record_sequential_hit()
                    continue
                vec = self.host_cache.lookup(row)
                if vec is not None:
                    hit_vecs.append(vec)
                    hit_rids.append(int(rids[i]))
                    miss_mask[i] = False
                else:
                    missed_rows.add(row)
            if hit_vecs:
                np.add.at(values, np.asarray(hit_rids), np.stack(hit_vecs))
                cost = host_cpu.accumulate_time(len(hit_vecs), table.spec.row_bytes)
                breakdown.add("cache_hit_accumulate", cost)
                host_tail += cost
                stats["cache_hits"] = float(len(hit_vecs))
            rows = rows[miss_mask]
            rids = rids[miss_mask]

        # Per-lookup index handling cost on the host.
        host_tail += rows.size * host_cpu.config.sls_per_lookup_s

        if rows.size == 0:
            self._finish(sim, host_tail, values, start, breakdown, stats, on_done)
            return

        # ---- group misses by LBA run --------------------------------------
        srows = table.storage_ids(rows)  # layout-aware storage ranks
        spans = table.lba_span_of_storage(srows)  # [n, 2] (first_lba, nlb)
        groups: Dict[Tuple[int, int], List[int]] = {}
        for i in range(rows.size):
            key = (int(spans[i, 0]), int(spans[i, 1]))
            groups.setdefault(key, []).append(i)
        commands = self._plan_commands(sorted(groups.keys()))
        stats["commands"] = float(len(commands))
        stats["unique_blocks"] = float(len(groups))

        pending = {"n": len(commands), "accumulate_cost": 0.0}
        rpp = table.rows_per_page
        page_bytes = table.page_bytes
        lba_bytes = table.lba_bytes
        table_base_byte = table.base_lba * lba_bytes

        def make_handler(span_keys: List[Tuple[int, int]]):
            member_idx = [i for key in span_keys for i in groups[key]]

            def handle(cpl) -> None:
                if not cpl.ok:
                    raise RuntimeError(f"baseline SLS read failed: {cpl.status}")
                # Extract each needed vector from the returned page content.
                content_by_lpn = {seg.lpn: seg.content for seg in cpl.payload.segments}
                got_rows = rows[member_idx]
                got_rids = rids[member_idx]
                got_srows = srows[member_idx]
                page_idx = got_srows // rpp
                slots = got_srows % rpp
                base_lpn = table_base_byte // page_bytes
                vecs = np.zeros((got_rows.size, table.spec.dim), dtype=np.float32)
                readable = np.ones(got_rows.size, dtype=bool)
                for j in range(got_rows.size):
                    content = content_by_lpn.get(base_lpn + int(page_idx[j]))
                    if content is None:
                        # Uncorrectable page: row contributes zeros, is
                        # not cached, and is counted (mirrors the
                        # vectorized path's filtering).
                        readable[j] = False
                        stats["uncorrectable_rows"] = (
                            stats.get("uncorrectable_rows", 0.0) + 1.0
                        )
                        continue
                    vecs[j] = extract_vectors(
                        content,
                        np.asarray([slots[j]]),
                        table.spec.dim,
                        rpp,
                        table.spec.quant,
                    )[0]
                np.add.at(values, got_rids, vecs)
                if self.host_cache is not None:
                    for j in range(got_rows.size):
                        if readable[j]:
                            self.host_cache.insert(int(got_rows[j]), vecs[j])
                pending["accumulate_cost"] += host_cpu.accumulate_time(
                    int(np.count_nonzero(readable)), table.spec.row_bytes
                )
                pending["n"] -= 1
                if pending["n"] == 0:
                    io_wait = sim.now - start
                    breakdown.add("io_wait", io_wait)
                    breakdown.add("host_accumulate", pending["accumulate_cost"])
                    self._finish(
                        sim,
                        host_tail + pending["accumulate_cost"],
                        values,
                        start,
                        breakdown,
                        stats,
                        on_done,
                    )

            return handle

        for slba, nlb, span_keys in commands:
            driver.read(slba, nlb, make_handler(span_keys))

    # ------------------------------------------------------------------
    def _plan_commands(
        self, span_keys: List[Tuple[int, int]]
    ) -> List[Tuple[int, int, List[Tuple[int, int]]]]:
        """Turn sorted unique LBA spans into (slba, nlb, members) commands."""
        commands: List[Tuple[int, int, List[Tuple[int, int]]]] = []
        if not span_keys:
            return commands
        if not self.coalesce:
            return [(lba, nlb, [(lba, nlb)]) for lba, nlb in span_keys]
        # Range reads: merge spans (gaps included — the extra blocks ride
        # along in the transfer) as long as the command stays within the
        # max transfer size.
        cur_start, cur_nlb = span_keys[0]
        members = [span_keys[0]]
        for lba, nlb in span_keys[1:]:
            if (lba + nlb - cur_start) <= self.max_coalesce_lbas:
                cur_nlb = max(cur_nlb, lba + nlb - cur_start)
                members.append((lba, nlb))
            else:
                commands.append((cur_start, cur_nlb, members))
                cur_start, cur_nlb = lba, nlb
                members = [(lba, nlb)]
        commands.append((cur_start, cur_nlb, members))
        return commands

    # ------------------------------------------------------------------
    def _finish(self, sim, tail_cost, values, start, breakdown, stats, on_done) -> None:
        def finish() -> None:
            on_done(
                SlsOpResult(
                    values=values,
                    start_time=start,
                    end_time=sim.now,
                    breakdown=breakdown,
                    stats=stats,
                )
            )

        sim.schedule(tail_cost, finish)
