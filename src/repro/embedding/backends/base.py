"""SLS backend interface.

A backend executes one SparseLengthsSum operation for one table over a
batch of per-result bags, returning the accumulated vectors plus the
simulated latency and a component breakdown.  Backends are asynchronous
(the pipeline and multi-table stages overlap them); ``run_sync`` drives
the simulator for one-off use.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from ...host.system import System
from ...sim.stats import Breakdown
from ..table import EmbeddingTable

__all__ = ["SlsOpResult", "SlsBackend", "flatten_bags"]


@dataclass
class SlsOpResult:
    values: np.ndarray
    start_time: float
    end_time: float
    breakdown: Breakdown = field(default_factory=Breakdown)
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def latency(self) -> float:
        return self.end_time - self.start_time


def flatten_bags(bags: Sequence[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Return (rows, result_ids) flattened from per-result bags."""
    rows: List[np.ndarray] = []
    rids: List[np.ndarray] = []
    for i, bag in enumerate(bags):
        bag = np.asarray(bag, dtype=np.int64).reshape(-1)
        rows.append(bag)
        rids.append(np.full(bag.size, i, dtype=np.int64))
    if not rows:
        return np.zeros(0, np.int64), np.zeros(0, np.int64)
    return np.concatenate(rows), np.concatenate(rids)


class SlsBackend(ABC):
    """One table's SLS executor on a given system.

    Any number of operations may be in flight at once; the backend tracks
    ``inflight``/``max_inflight`` so callers (the serving layer, tests) can
    observe genuine overlap in simulated time.
    """

    def __init__(self, system: System, table: EmbeddingTable):
        self.system = system
        self.table = table
        self.ops = 0
        self.inflight = 0
        self.max_inflight = 0

    def start(
        self, bags: Sequence[np.ndarray], on_done: Callable[[SlsOpResult], None]
    ) -> None:
        """Begin the operation; ``on_done(result)`` fires at completion."""
        self.ops += 1
        self.inflight += 1
        if self.inflight > self.max_inflight:
            self.max_inflight = self.inflight

        # Online heat: when a tracker is installed on the table (layout
        # migration enabled), every op's rows feed the histogram here —
        # the one funnel all backend kinds share.  External row ids on
        # purpose: heat is a property of what the model asks for, not of
        # where the layout currently stores it.
        tracker = getattr(self.table, "heat_tracker", None)
        if tracker is not None:
            tracker.record(flatten_bags(bags)[0])

        # Observability choke point: every backend kind (dram, ssd, ndp)
        # funnels through here, so one ``sls_op`` span covers them all.
        # The span stays pushed for the synchronous part of ``_start``,
        # parenting any NVMe commands the backend issues inline.
        tracer = self.system.sim.tracer
        op_span = None
        if tracer is not None:
            op_span = tracer.begin(
                "sls_op", backend=type(self).__name__, bags=len(bags)
            )

        def finished(result: SlsOpResult) -> None:
            if op_span is not None:
                tracer.end(op_span)
            self.inflight -= 1
            on_done(result)

        if op_span is not None:
            tracer.push(op_span)
            try:
                self._start(bags, finished)
            finally:
                tracer.pop()
        else:
            self._start(bags, finished)

    @abstractmethod
    def _start(
        self, bags: Sequence[np.ndarray], on_done: Callable[[SlsOpResult], None]
    ) -> None:
        """Backend-specific implementation behind :meth:`start`."""

    @property
    def available(self) -> bool:
        """False when the backing device is fail-stopped.

        DRAM-backed tables have no device and are always available;
        sharded stages skip unavailable backends and degrade the result
        instead of failing the batch.
        """
        device = getattr(self.table, "device", None)
        return not getattr(device, "down", False)

    def reset_stats(self) -> None:
        """Clear op counters (in-flight gauges keep tracking live ops)."""
        self.ops = 0
        self.max_inflight = self.inflight

    def run_sync(self, bags: Sequence[np.ndarray]) -> SlsOpResult:
        box: List[SlsOpResult] = []
        self.start(bags, box.append)
        self.system.sim.run_until(lambda: bool(box))
        return box[0]

    @property
    def name(self) -> str:  # pragma: no cover - cosmetic
        return type(self).__name__
