"""Embedding layer: tables, layouts, caches, SLS backends, pipelines."""

from .backends import (
    DramSlsBackend,
    NdpSlsBackend,
    SlsBackend,
    SlsOpResult,
    SsdSlsBackend,
    flatten_bags,
)
from .caches import SetAssociativeLru, StaticPartitionCache, profile_hot_rows
from .data import DenseTableData, TableData, VirtualTableData
from .pipeline import InferencePipeline, PipelineBatchRecord, PipelineResult
from .placement import HeatTracker, LayoutMigrator, heat_from_rows, profile_heat
from .spec import Layout, TableSpec
from .stage import EmbeddingStage, EmbStageResult
from .table import EmbeddingTable, TablePageContent, TableRegion

__all__ = [
    "DramSlsBackend",
    "NdpSlsBackend",
    "SlsBackend",
    "SlsOpResult",
    "SsdSlsBackend",
    "flatten_bags",
    "SetAssociativeLru",
    "StaticPartitionCache",
    "profile_hot_rows",
    "DenseTableData",
    "TableData",
    "VirtualTableData",
    "InferencePipeline",
    "PipelineBatchRecord",
    "PipelineResult",
    "HeatTracker",
    "LayoutMigrator",
    "heat_from_rows",
    "profile_heat",
    "Layout",
    "TableSpec",
    "EmbeddingStage",
    "EmbStageResult",
    "EmbeddingTable",
    "TablePageContent",
    "TableRegion",
]
