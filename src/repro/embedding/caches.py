"""Host-side embedding caches.

``SetAssociativeLru`` is the conventional host DRAM software cache the
baseline uses (the paper's characterization and Fig 10 baseline use a
16-way LRU).  ``StaticPartitionCache`` is RecSSD's host-DRAM strategy:
because the NDP operator returns pre-accumulated results it cannot
populate an LRU cache, so the hottest rows (from input profiling) are
statically pinned in host DRAM instead (Section 4.2).

Both caches are array-native: tags, LRU stamps and values live in dense
numpy storage so the serving hot path can probe a whole batch of rows in
a handful of vector operations (``lookup_many`` / ``insert_many`` /
``partition_mask``), while the scalar entry points stay O(1) through a
key -> slot dict.  The behaviour is bit-identical to the scalar
reference in :mod:`repro.embedding.caches_scalar` (see
``tests/hotpath/test_cache_equivalence.py``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..obs.resettable import register_resettable

__all__ = ["SetAssociativeLru", "StaticPartitionCache", "profile_hot_rows"]


class SetAssociativeLru:
    """Set-associative LRU cache of row -> vector, with batch probes.

    Storage is one tag/stamp slot per (set, way): ``_tags`` holds the key
    (-1 = empty), ``_stamps`` a monotonically increasing access counter
    (the LRU order), and ``_values`` the cached vectors, lazily allocated
    from the first inserted value's shape/dtype (one cache caches one
    table's vectors).  Keys must be non-negative integers.
    """

    def __init__(self, capacity: int, ways: int = 16):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        if ways < 1:
            raise ValueError("ways must be >= 1")
        self.capacity = capacity
        self.ways = min(ways, capacity) if capacity else ways
        # Round sets UP: flooring capacity // ways silently shrinks any
        # capacity that is not a ways multiple (e.g. capacity=40, ways=16
        # used to build a 32-entry cache) — enough to turn a
        # cyclic-reuse trace that should hit ~100% into pure thrash.
        self.sets = (
            max(1, -(-capacity // max(1, self.ways))) if capacity else 0
        )
        self._tags = np.full((self.sets, self.ways), -1, dtype=np.int64)
        self._stamps = np.zeros((self.sets, self.ways), dtype=np.int64)
        self._values: Optional[np.ndarray] = None        # [sets*ways, *vshape]
        self._slot_of: Dict[int, int] = {}               # key -> set*ways + way
        self._free: List[List[int]] = [
            list(range(self.ways - 1, -1, -1)) for _ in range(self.sets)
        ]
        self._counter = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        register_resettable(self)

    # ------------------------------------------------------------------
    def _ensure_storage(self, value: np.ndarray) -> None:
        value = np.asarray(value)
        if self._values is None:
            self._values = np.zeros(
                (self.sets * self.ways,) + value.shape, dtype=value.dtype
            )
        elif self._values.shape[1:] != value.shape:
            raise ValueError(
                f"cache values must share one shape: got {value.shape}, "
                f"cache holds {self._values.shape[1:]}"
            )

    # ------------------------------------------------------------------
    # Scalar interface
    # ------------------------------------------------------------------
    def lookup(self, key: int) -> Optional[np.ndarray]:
        slot = self._slot_of.get(key)
        if slot is None:
            self.misses += 1
            return None
        self._counter += 1
        self._stamps.flat[slot] = self._counter
        self.hits += 1
        return self._values[slot]

    def insert(self, key: int, value: np.ndarray) -> None:
        if self.capacity == 0:
            return
        self._ensure_storage(value)
        self._counter += 1
        slot = self._slot_of.get(key)
        if slot is None:
            slot = self._allocate_slot(int(key) % self.sets, int(key))
        self._stamps.flat[slot] = self._counter
        self._values[slot] = value

    def _allocate_slot(self, s: int, key: int) -> int:
        """Claim a way in set ``s`` for ``key`` (free way, else evict LRU)."""
        free = self._free[s]
        if free:
            w = free.pop()
        else:
            w = int(np.argmin(self._stamps[s]))
            victim = int(self._tags[s, w])
            del self._slot_of[victim]
            self.evictions += 1
        self._tags[s, w] = key
        slot = s * self.ways + w
        self._slot_of[key] = slot
        return slot

    def invalidate(self, key: int) -> bool:
        """Drop ``key`` if cached (a row overwritten by a live update).

        The freed way goes to the back of the set's freelist, so it is
        the next way allocated in that set; returns whether the key was
        resident.
        """
        slot = self._slot_of.pop(key, None)
        if slot is None:
            return False
        s, w = slot // self.ways, slot % self.ways
        self._tags[s, w] = -1
        self._free[s].append(w)
        self.invalidations += 1
        return True

    def invalidate_many(self, keys: np.ndarray) -> int:
        """Invalidate a batch; equivalent to ``invalidate`` per key, in order."""
        dropped = 0
        for key in np.asarray(keys, dtype=np.int64).tolist():
            if self.invalidate(key):
                dropped += 1
        return dropped

    def record_sequential_hit(self) -> None:
        """Credit a hit that sequential execution would have produced.

        A batch-oriented operator probes all lookups before any fetch
        completes; a repeat of a just-missed row later in the same batch
        would have hit under the real system's streaming execution, so the
        backend credits it explicitly.
        """
        self.hits += 1

    def __contains__(self, key: int) -> bool:
        return key in self._slot_of

    # ------------------------------------------------------------------
    # Batch interface
    # ------------------------------------------------------------------
    def lookup_many(self, keys: np.ndarray) -> tuple[np.ndarray, Optional[np.ndarray]]:
        """Probe a batch; equivalent to ``lookup`` per key, in order.

        Returns ``(hit_mask, vectors)`` with ``vectors`` holding the
        cached values of the hit positions (``None`` when nothing hit).
        Stats and LRU stamps match the sequential outcome exactly:
        membership cannot change mid-batch, and for repeated keys the
        last probe's recency wins — which is what element-order fancy
        assignment produces.
        """
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        n = keys.size
        if self.capacity == 0 or not self._slot_of or n == 0:
            self.misses += n
            return np.zeros(n, dtype=bool), None
        sets = keys % self.sets
        eq = self._tags[sets] == keys[:, None]
        hit_mask = eq.any(axis=1)
        hit_idx = np.flatnonzero(hit_mask)
        n_hits = hit_idx.size
        self.hits += int(n_hits)
        self.misses += n - int(n_hits)
        if n_hits == 0:
            self._counter += n
            return hit_mask, None
        slots = sets[hit_idx] * self.ways + eq[hit_idx].argmax(axis=1)
        self._stamps.flat[slots] = self._counter + 1 + hit_idx
        self._counter += n
        return hit_mask, self._values[slots]

    def probe_filter(self, keys: np.ndarray) -> tuple[np.ndarray, Optional[np.ndarray]]:
        """Batch form of the SSD backend's sequential cache filter.

        Equivalent to, per element in order: skip (and credit a
        sequential hit for) repeats of a key that already missed earlier
        in the batch; otherwise ``lookup``.  Returns ``(hit_mask,
        vectors_for_hits)``.  Membership cannot change mid-batch, so the
        hit mask is a pure membership test; stats decompose as
        ``hits += #hit-elements + #repeat-misses`` and ``misses +=
        #unique-missing-keys``.
        """
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        n = keys.size
        if self.capacity == 0 or not self._slot_of or n == 0:
            uniq_missing = int(np.unique(keys).size)
            self.misses += uniq_missing
            self.hits += n - uniq_missing
            return np.zeros(n, dtype=bool), None
        sets = keys % self.sets
        eq = self._tags[sets] == keys[:, None]
        hit_mask = eq.any(axis=1)
        hit_idx = np.flatnonzero(hit_mask)
        n_miss = n - hit_idx.size
        uniq_missing = int(np.unique(keys[~hit_mask]).size)
        self.hits += int(hit_idx.size) + (n_miss - uniq_missing)
        self.misses += uniq_missing
        if hit_idx.size == 0:
            self._counter += n
            return hit_mask, None
        slots = sets[hit_idx] * self.ways + eq[hit_idx].argmax(axis=1)
        self._stamps.flat[slots] = self._counter + 1 + hit_idx
        self._counter += n
        return hit_mask, self._values[slots]

    def insert_many(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Insert a batch; equivalent to ``insert`` per row, in order.

        Tag/LRU bookkeeping runs element-wise (dict and freelist updates
        are inherently per-key) but the vector payloads are written in one
        scatter at the end, which is where the per-row cost was.
        """
        if self.capacity == 0 or keys.size == 0:
            return
        if keys.size < 4:
            # Tiny refills (single-page commands): per-key insert beats the
            # array bookkeeping below.
            for key, value in zip(keys.tolist(), values):
                self.insert(key, value)
            return
        values = np.asarray(values)
        self._ensure_storage(values[0])
        slot_of = self._slot_of
        sets = self.sets
        counter = self._counter
        stamps_flat = self._stamps.reshape(-1)
        slots = np.empty(keys.size, dtype=np.int64)
        for i, key in enumerate(keys.tolist()):
            counter += 1
            slot = slot_of.get(key)
            if slot is None:
                slot = self._allocate_slot(key % sets, key)
            stamps_flat[slot] = counter
            slots[i] = slot
        self._counter = counter
        # Duplicate keys resolve to the same slot; element-order assignment
        # keeps the last value, matching the sequential overwrite.
        self._values[slots] = values

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return len(self._slot_of)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    # Equivalence-test hooks (mirror the scalar reference's)
    # ------------------------------------------------------------------
    def contents(self) -> Dict[int, np.ndarray]:
        """Key -> value snapshot."""
        return {key: self._values[slot] for key, slot in self._slot_of.items()}

    def recency_order(self) -> List[List[int]]:
        """Per-set keys from least- to most-recently used."""
        out: List[List[int]] = []
        for s in range(self.sets):
            occupied = np.flatnonzero(self._tags[s] != -1)
            order = occupied[np.argsort(self._stamps[s][occupied], kind="stable")]
            out.append([int(self._tags[s, w]) for w in order])
        return out


def profile_hot_rows(trace_rows: Iterable[np.ndarray], capacity: int) -> np.ndarray:
    """Return the ``capacity`` most frequently accessed row ids in a profile."""
    arrays = [np.asarray(a, dtype=np.int64).reshape(-1) for a in trace_rows]
    arrays = [a for a in arrays if a.size]
    if not arrays:
        return np.zeros(0, dtype=np.int64)
    ids, counts = np.unique(np.concatenate(arrays), return_counts=True)
    # Sort by (-count, row): lexsort's last key is primary; ids ascending
    # breaks count ties deterministically.
    order = np.lexsort((ids, -counts))
    return ids[order[:capacity]]


class StaticPartitionCache:
    """Read-only host partition holding profiled-hot rows of one table.

    Membership is a sorted-array ``searchsorted`` (vectorized across a
    whole batch of rows); a key dict backs the scalar ``lookup``.
    """

    def __init__(self, rows: np.ndarray, vectors: np.ndarray):
        rows = np.asarray(rows, dtype=np.int64)
        if vectors.shape[0] != rows.size:
            raise ValueError("rows/vectors length mismatch")
        self._vectors = np.asarray(vectors, dtype=np.float32)
        self._index: Dict[int, int] = {int(r): i for i, r in enumerate(rows)}
        order = np.argsort(rows, kind="stable")
        self._sorted_rows = rows[order]
        self._sorted_to_idx = order
        self.hits = 0
        self.misses = 0
        self.updates = 0
        register_resettable(self)

    @classmethod
    def from_profile(cls, table, trace_rows: Iterable[np.ndarray], capacity: int):
        hot = profile_hot_rows(trace_rows, capacity)
        vectors = (
            table.get_rows(hot) if hot.size else np.zeros((0, table.spec.dim), np.float32)
        )
        return cls(hot, vectors)

    def lookup(self, row: int) -> Optional[np.ndarray]:
        idx = self._index.get(row)
        if idx is None:
            self.misses += 1
            return None
        self.hits += 1
        return self._vectors[idx]

    def _positions(self, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(insertion_pos, member_mask) of ``rows`` in the sorted id array."""
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        pos = np.searchsorted(self._sorted_rows, rows)
        if self._sorted_rows.size == 0:
            return pos, np.zeros(rows.size, dtype=bool)
        mask = self._sorted_rows[np.minimum(pos, self._sorted_rows.size - 1)] == rows
        return pos, mask

    def partition_mask(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized membership test (counts hits/misses)."""
        _pos, mask = self._positions(rows)
        n_hit = int(mask.sum())
        self.hits += n_hit
        self.misses += len(rows) - n_hit
        return mask

    def update_rows(self, rows: np.ndarray, vectors: np.ndarray) -> int:
        """Write-through for member rows: overwrite their pinned vectors.

        Membership is static (profiled-hot rows stay pinned); rows not
        in the partition are ignored.  Duplicate rows resolve in element
        order, so the last value wins — matching a sequential loop.
        Returns the number of member rows written.
        """
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.shape[0] != len(rows):
            raise ValueError("rows/vectors length mismatch")
        pos, mask = self._positions(rows)
        n_hit = int(mask.sum())
        if n_hit:
            self._vectors[self._sorted_to_idx[pos[mask]]] = vectors[mask]
            self.updates += n_hit
        return n_hit

    def vectors_for(self, rows: np.ndarray) -> np.ndarray:
        pos, mask = self._positions(rows)
        if not mask.all():
            missing = np.asarray(rows)[~mask]
            raise KeyError(f"rows not in partition: {missing[:8].tolist()}")
        return self._vectors[self._sorted_to_idx[pos]]

    @property
    def size(self) -> int:
        return self._sorted_rows.size

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.updates = 0
