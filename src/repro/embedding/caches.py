"""Host-side embedding caches.

``SetAssociativeLru`` is the conventional host DRAM software cache the
baseline uses (the paper's characterization and Fig 10 baseline use a
16-way LRU).  ``StaticPartitionCache`` is RecSSD's host-DRAM strategy:
because the NDP operator returns pre-accumulated results it cannot
populate an LRU cache, so the hottest rows (from input profiling) are
statically pinned in host DRAM instead (Section 4.2).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional

import numpy as np

__all__ = ["SetAssociativeLru", "StaticPartitionCache", "profile_hot_rows"]


class SetAssociativeLru:
    """Set-associative LRU cache of row -> vector."""

    def __init__(self, capacity: int, ways: int = 16):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        if ways < 1:
            raise ValueError("ways must be >= 1")
        self.capacity = capacity
        self.ways = min(ways, capacity) if capacity else ways
        self.sets = max(1, capacity // max(1, self.ways)) if capacity else 0
        self._sets: List["OrderedDict[int, np.ndarray]"] = [
            OrderedDict() for _ in range(self.sets)
        ]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _set_of(self, key: int) -> "OrderedDict[int, np.ndarray]":
        return self._sets[key % self.sets]

    def lookup(self, key: int) -> Optional[np.ndarray]:
        if self.capacity == 0:
            self.misses += 1
            return None
        bucket = self._set_of(key)
        value = bucket.get(key)
        if value is None:
            self.misses += 1
            return None
        bucket.move_to_end(key)
        self.hits += 1
        return value

    def insert(self, key: int, value: np.ndarray) -> None:
        if self.capacity == 0:
            return
        bucket = self._set_of(key)
        if key in bucket:
            bucket.move_to_end(key)
            bucket[key] = value
            return
        if len(bucket) >= self.ways:
            bucket.popitem(last=False)
            self.evictions += 1
        bucket[key] = value

    def record_sequential_hit(self) -> None:
        """Credit a hit that sequential execution would have produced.

        A batch-oriented operator probes all lookups before any fetch
        completes; a repeat of a just-missed row later in the same batch
        would have hit under the real system's streaming execution, so the
        backend credits it explicitly.
        """
        self.hits += 1

    def __contains__(self, key: int) -> bool:
        if self.capacity == 0:
            return False
        return key in self._set_of(key)

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0


def profile_hot_rows(trace_rows: Iterable[np.ndarray], capacity: int) -> np.ndarray:
    """Return the ``capacity`` most frequently accessed row ids in a profile."""
    counts: Dict[int, int] = {}
    for arr in trace_rows:
        ids, freq = np.unique(np.asarray(arr, dtype=np.int64), return_counts=True)
        for row, n in zip(ids, freq):
            counts[int(row)] = counts.get(int(row), 0) + int(n)
    if not counts:
        return np.zeros(0, dtype=np.int64)
    ordered = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return np.asarray([row for row, _n in ordered[:capacity]], dtype=np.int64)


class StaticPartitionCache:
    """Read-only host partition holding profiled-hot rows of one table."""

    def __init__(self, rows: np.ndarray, vectors: np.ndarray):
        rows = np.asarray(rows, dtype=np.int64)
        if vectors.shape[0] != rows.size:
            raise ValueError("rows/vectors length mismatch")
        self._index: Dict[int, int] = {int(r): i for i, r in enumerate(rows)}
        self._vectors = np.asarray(vectors, dtype=np.float32)
        self.hits = 0
        self.misses = 0

    @classmethod
    def from_profile(cls, table, trace_rows: Iterable[np.ndarray], capacity: int):
        hot = profile_hot_rows(trace_rows, capacity)
        vectors = (
            table.get_rows(hot) if hot.size else np.zeros((0, table.spec.dim), np.float32)
        )
        return cls(hot, vectors)

    def lookup(self, row: int) -> Optional[np.ndarray]:
        idx = self._index.get(row)
        if idx is None:
            self.misses += 1
            return None
        self.hits += 1
        return self._vectors[idx]

    def partition_mask(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized membership test (counts hits/misses)."""
        mask = np.fromiter(
            (int(r) in self._index for r in rows), count=len(rows), dtype=bool
        )
        n_hit = int(mask.sum())
        self.hits += n_hit
        self.misses += len(rows) - n_hit
        return mask

    def vectors_for(self, rows: np.ndarray) -> np.ndarray:
        idxs = np.asarray([self._index[int(r)] for r in rows], dtype=np.int64)
        return self._vectors[idxs]

    @property
    def size(self) -> int:
        return len(self._index)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
