"""Embedding tables: data + flash placement + reference SLS.

``EmbeddingTable.attach`` places the table in an aligned LBA region of a
simulated SSD and preloads its image as a virtual flash region.  The
same object provides the canonical in-DRAM reference result
(`ref_sls`), so every storage backend can be verified bit-for-bit
(modulo float accumulation order) against it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.config import SlsConfig, build_pairs
from ..ftl.layout import FrequencyLayout, RowLayout
from ..quant import decode_vectors, encode_vectors
from ..ssd.device import SsdDevice
from .data import MappedTableData, TableData, VirtualTableData
from .spec import Layout, TableSpec

__all__ = ["TablePageContent", "TableRegion", "EmbeddingTable"]


class TablePageContent:
    """Virtual content of one flash page of a table."""

    __slots__ = ("table", "page_index")

    def __init__(self, table: "EmbeddingTable", page_index: int):
        self.table = table
        self.page_index = page_index

    def vectors(self, slots: np.ndarray) -> np.ndarray:
        """Canonical float32 vectors for in-page ``slots``.

        Slots address internal storage ranks; the table's layout (when
        present) resolves each rank to the external row stored there, so
        a layout re-pack retroactively "rewrites" this virtual page.
        """
        slots = np.asarray(slots, dtype=np.int64)
        rpp = self.table.rows_per_page
        ranks = self.page_index * rpp + slots
        out = np.zeros((slots.size, self.table.spec.dim), dtype=np.float32)
        in_range = ranks < self.table.spec.rows
        if np.any(in_range):
            rows = self.table.external_ids(ranks[in_range])
            out[in_range] = self.table.get_rows(rows)
        return out

    def materialize(self) -> np.ndarray:
        """Encode the page's rows into a page-sized uint8 buffer."""
        spec = self.table.spec
        page_bytes = self.table.page_bytes
        buf = np.zeros(page_bytes, dtype=np.uint8)
        rpp = self.table.rows_per_page
        first = self.page_index * rpp
        count = min(rpp, spec.rows - first)
        if count > 0:
            rows = self.table.external_ids(
                np.arange(first, first + count, dtype=np.int64)
            )
            raw = self.table.data.get_rows(rows)
            stored = encode_vectors(raw, spec.quant)
            encoded = stored.view(np.uint8).reshape(count, spec.row_bytes)
            rows_view = buf[: rpp * spec.row_bytes].reshape(rpp, spec.row_bytes)
            rows_view[:count] = encoded
        return buf


class TableRegion:
    """Flash-store region adapter covering the whole table."""

    def __init__(self, table: "EmbeddingTable"):
        self.table = table
        self.page_count = table.spec.table_pages(table.page_bytes)

    def page_content(self, offset: int) -> Optional[TablePageContent]:
        if not 0 <= offset < self.page_count:
            return None
        return TablePageContent(self.table, offset)


class EmbeddingTable:
    """A table spec + data source, optionally attached to an SSD."""

    def __init__(
        self,
        spec: TableSpec,
        data: Optional[TableData] = None,
        seed: int = 0,
    ):
        self.spec = spec
        self.data = data or VirtualTableData(spec.rows, spec.dim, seed=seed)
        if (self.data.rows, self.data.dim) != (spec.rows, spec.dim):
            raise ValueError("data shape does not match spec")
        self.device: Optional[SsdDevice] = None
        self.base_lba: Optional[int] = None
        self._page_bytes: Optional[int] = None
        # Row -> page layout.  None keeps the legacy identity placement
        # (row i at rank i) with zero per-op overhead; ``set_heat``
        # before ``attach`` selects heat-ordered packing instead.
        self.layout: Optional[RowLayout] = None
        self._heat: Optional[np.ndarray] = None
        # Online heat tracker (repro.embedding.placement.HeatTracker);
        # backends record accessed rows here when one is installed.
        self.heat_tracker = None

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def set_heat(self, heat: Optional[np.ndarray]) -> None:
        """Install a per-row access-frequency profile for placement.

        Must run before :meth:`attach` (rows-per-page depends on the
        device's page size, so the layout is built at attach time).
        ``None`` clears the profile; a uniform profile reproduces the
        legacy layout bit-identically.
        """
        if self.attached:
            raise RuntimeError("set_heat must run before attach")
        if heat is None:
            self._heat = None
            return
        heat = np.asarray(heat, dtype=np.float64)
        if heat.shape != (self.spec.rows,):
            raise ValueError(
                f"heat must have one entry per row ({self.spec.rows}), "
                f"got shape {heat.shape}"
            )
        self._heat = heat.copy()

    @property
    def heat(self) -> Optional[np.ndarray]:
        return self._heat

    def storage_ids(self, ids: np.ndarray) -> np.ndarray:
        """Internal storage ranks of external row ``ids`` (identity when
        no layout is installed)."""
        if self.layout is None:
            return np.asarray(ids, dtype=np.int64)
        return self.layout.storage_ids(ids)

    def external_ids(self, ranks: np.ndarray) -> np.ndarray:
        """External row ids stored at internal ``ranks``."""
        if self.layout is None:
            return np.asarray(ranks, dtype=np.int64)
        return self.layout.external_ids(ranks)

    # ------------------------------------------------------------------
    # Sharding
    # ------------------------------------------------------------------
    def row_shard(self, global_ids: np.ndarray, shard_index: int) -> "EmbeddingTable":
        """A shard-local table owning this table's rows ``global_ids``.

        The invariant (relied on by the serving layer's scatter-gather
        path): shard-local id ``l`` addresses the same vector as global id
        ``global_ids[l]`` in this table, so
        ``shard.get_rows(local) == parent.get_rows(global_ids[local])``
        bit-for-bit.  ``global_ids`` must be strictly ascending so that
        sorting by local id preserves the parent's sorted-by-global-id
        accumulation order inside order-sensitive backends (the NDP
        engine sums pairs sorted by input id).
        """
        global_ids = np.asarray(global_ids, dtype=np.int64)
        if global_ids.size > 1 and not np.all(np.diff(global_ids) > 0):
            raise ValueError("global_ids must be strictly ascending")
        shard = EmbeddingTable(
            self.spec.shard(shard_index, int(global_ids.size)),
            data=MappedTableData(self.data, global_ids),
        )
        if self._heat is not None and global_ids.size:
            # Shard-local heat is the parent profile restricted to the
            # rows this shard owns, so each shard packs its own pages.
            shard.set_heat(self._heat[global_ids])
        return shard

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def attach(self, device: SsdDevice) -> None:
        """Place and preload this table on ``device``."""
        if self.device is not None:
            raise RuntimeError(f"table {self.spec.name} already attached")
        self.device = device
        self._page_bytes = device.ftl.page_bytes
        self._build_layout()
        n_pages = self.spec.table_pages(self._page_bytes)
        self.base_lba = device.allocate_table_region(n_pages)
        base_lpn = self.base_lba // device.ftl.lbas_per_page
        device.ftl.preload_region(base_lpn, TableRegion(self))

    def attach_via_io(self, system) -> None:
        """Place the table and load it through the conventional write path.

        Unlike :meth:`attach` (which installs a zero-time virtual image),
        this writes every page's real encoded bytes through the driver,
        NVMe controller, FTL and flash — the way an actual deployment
        would load a table.  Intended for small tables and tests; the
        simulated time cost is real.
        """
        if self.device is not None:
            raise RuntimeError(f"table {self.spec.name} already attached")
        device = system.device
        self.device = device
        self._page_bytes = device.ftl.page_bytes
        self._build_layout()
        n_pages = self.spec.table_pages(self._page_bytes)
        self.base_lba = device.allocate_table_region(n_pages)
        driver = system.driver_for(device)
        lbas_per_page = device.ftl.lbas_per_page
        pending = {"n": n_pages}
        for page_index in range(n_pages):
            buf = TablePageContent(self, page_index).materialize()
            slba = self.base_lba + page_index * lbas_per_page

            def on_done(cpl) -> None:
                if not cpl.ok:
                    raise RuntimeError(f"table load write failed: {cpl.status}")
                pending["n"] -= 1

            driver.write(slba, lbas_per_page, buf, on_done)
        system.sim.run_until(lambda: pending["n"] == 0)

    def _build_layout(self) -> None:
        """Turn an installed heat profile into a frequency layout.

        Runs at attach time (rows-per-page needs the device page size).
        Without a profile the layout stays ``None`` — the identity —
        so every pre-layout golden timeline is preserved bit-for-bit.
        """
        if self._heat is not None:
            self.layout = FrequencyLayout.from_heat(
                self._heat, self.spec.rows, self.rows_per_page
            )

    @property
    def attached(self) -> bool:
        return self.device is not None

    @property
    def page_bytes(self) -> int:
        if self._page_bytes is None:
            raise RuntimeError("table not attached to a device")
        return self._page_bytes

    @property
    def rows_per_page(self) -> int:
        return self.spec.rows_per_page(self.page_bytes)

    @property
    def lba_bytes(self) -> int:
        return self.device.ftl.config.lba_bytes

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def row_location(self, row: int) -> tuple[int, int]:
        """(page_index, slot) of a row under this table's layout."""
        rpp = self.rows_per_page
        rank = int(self.storage_ids(np.asarray([row]))[0])
        return rank // rpp, rank % rpp

    def lba_span_of_rows(self, rows: np.ndarray) -> np.ndarray:
        """Per-row ``(first_lba, nlb)`` covering each row's bytes."""
        return self.lba_span_of_storage(self.storage_ids(rows))

    def lba_span_of_storage(self, ranks: np.ndarray) -> np.ndarray:
        """Per-rank ``(first_lba, nlb)`` for already-translated storage
        ranks (backends translate once and reuse the ranks for span
        grouping *and* in-page slot extraction)."""
        ranks = np.asarray(ranks, dtype=np.int64)
        rpp = self.rows_per_page
        page_idx = ranks // rpp
        slot = ranks % rpp
        byte_start = (
            self.base_lba * self.lba_bytes
            + page_idx * self.page_bytes
            + slot * self.spec.row_bytes
        )
        byte_end = byte_start + self.spec.row_bytes - 1
        first = byte_start // self.lba_bytes
        last = byte_end // self.lba_bytes
        return np.stack([first, last - first + 1], axis=1)

    # ------------------------------------------------------------------
    # Data access (canonical values = quantization round trip)
    # ------------------------------------------------------------------
    def get_rows(self, ids: np.ndarray) -> np.ndarray:
        raw = self.data.get_rows(ids)
        return decode_vectors(encode_vectors(raw, self.spec.quant), self.spec.quant)

    def ref_sls(self, bags: Sequence[np.ndarray]) -> np.ndarray:
        """In-DRAM reference SparseLengthsSum over per-result bags.

        One gather + segment reduce over the flattened bags (the DRAM
        backend's hot path at serving scale).
        """
        from ..core.vecops import segment_sum
        from .backends.base import flatten_bags

        rows, rids = flatten_bags(bags)
        if rows.size == 0:
            return np.zeros((len(bags), self.spec.dim), dtype=np.float32)
        return segment_sum(self.get_rows(rows), rids, len(bags))

    # ------------------------------------------------------------------
    # NDP config construction
    # ------------------------------------------------------------------
    def make_sls_config(self, bags: Sequence[np.ndarray]) -> SlsConfig:
        if not self.attached:
            raise RuntimeError("table must be attached before issuing SLS")
        if self.layout is None:
            bags = [np.asarray(b) for b in bags]
        else:
            # The device addresses storage ranks: translate each bag so
            # the NDP engine's page math (rank // rows_per_page) walks
            # the heat-packed placement.  Pairs then sort by rank — the
            # page-ordered scan the weak SSD CPU needs.
            bags = [
                self.storage_ids(np.asarray(b, dtype=np.int64).reshape(-1))
                for b in bags
            ]
        pairs = build_pairs(bags)
        return SlsConfig(
            table_base_lba=self.base_lba,
            request_id=0,  # assigned by the driver session
            pairs=pairs,
            num_results=len(bags),
            vec_dim=self.spec.dim,
            quant=self.spec.quant,
            rows_per_page=self.rows_per_page,
            table_rows=self.spec.rows,
        )

    @property
    def total_lookups_hint(self) -> int:
        return self.spec.rows

    def __repr__(self) -> str:
        return (
            f"EmbeddingTable({self.spec.name}, rows={self.spec.rows}, "
            f"dim={self.spec.dim}, layout={self.spec.layout.value})"
        )
