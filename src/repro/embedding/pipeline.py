"""Two-stage inference pipeline (Section 4.2: multi-threading/pipelining).

SLS workers prefetch the embeddings of batch ``i+1`` while neural-network
workers compute batch ``i``.  In steady state the per-batch latency is
governed by the slower stage; the pipeline simulator runs real batches
through the DES so the embedding stage sees genuine device contention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..sim.kernel import Simulator
from ..sim.stats import Accumulator
from .stage import EmbeddingStage, EmbStageResult

__all__ = ["PipelineBatchRecord", "PipelineResult", "InferencePipeline"]

DenseTimeFn = Callable[[int, EmbStageResult], float]  # (batch index, emb result)


@dataclass
class PipelineBatchRecord:
    index: int
    emb_latency: float
    dense_latency: float
    finish_time: float
    emb_result: Optional[EmbStageResult] = None


@dataclass
class PipelineResult:
    records: List[PipelineBatchRecord]
    total_time: float
    warmup: int

    @property
    def steady_state_latency(self) -> float:
        """Mean inter-completion interval after warmup (per-batch latency)."""
        steady = self.records[self.warmup :]
        if len(steady) < 2:
            return self.records[-1].finish_time / max(1, len(self.records))
        first, last = steady[0], steady[-1]
        return (last.finish_time - first.finish_time) / (len(steady) - 1)

    @property
    def mean_emb_latency(self) -> float:
        acc = Accumulator()
        acc.extend(r.emb_latency for r in self.records[self.warmup :])
        return acc.mean

    @property
    def mean_dense_latency(self) -> float:
        acc = Accumulator()
        acc.extend(r.dense_latency for r in self.records[self.warmup :])
        return acc.mean


class InferencePipeline:
    """Overlaps the embedding stage of batch i+1 with dense compute of i."""

    def __init__(
        self,
        stage: EmbeddingStage,
        dense_time_fn: DenseTimeFn,
        pipelined: bool = True,
    ):
        self.stage = stage
        self.dense_time_fn = dense_time_fn
        self.pipelined = pipelined
        self.sim = stage.sim

    # ------------------------------------------------------------------
    def run(
        self,
        batches: Sequence[Dict[str, Sequence[np.ndarray]]],
        warmup: int = 1,
        keep_results: bool = False,
    ) -> PipelineResult:
        if not batches:
            raise ValueError("need at least one batch")
        records: List[PipelineBatchRecord] = []
        state = {
            "next_batch": 0,
            "dense_busy_until": 0.0,
            "done": 0,
        }
        sim = self.sim
        n = len(batches)
        t0 = sim.now

        def launch_next() -> None:
            i = state["next_batch"]
            if i >= n:
                return
            state["next_batch"] += 1
            self.stage.start(batches[i], lambda res, _i=i: emb_done(_i, res))

        def emb_done(i: int, res: EmbStageResult) -> None:
            dense_time = self.dense_time_fn(i, res)
            # Dense compute starts when the NN workers free up (serialized);
            # the next batch's embedding fetch can begin immediately.
            dense_start = max(sim.now, state["dense_busy_until"])
            finish = dense_start + dense_time
            state["dense_busy_until"] = finish

            def complete() -> None:
                records.append(
                    PipelineBatchRecord(
                        index=i,
                        emb_latency=res.latency,
                        dense_latency=dense_time,
                        finish_time=sim.now - t0,
                        emb_result=res if keep_results else None,
                    )
                )
                state["done"] += 1
                if not self.pipelined:
                    launch_next()

            sim.schedule_at(finish, complete)
            if self.pipelined:
                launch_next()

        launch_next()
        sim.run_until(lambda: state["done"] == n)
        records.sort(key=lambda r: r.index)
        return PipelineResult(
            records=records, total_time=sim.now - t0, warmup=min(warmup, n - 1)
        )
