"""Experiment scaffolding: results, text tables, locality samplers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..models.base import IndexSampler, RecModel
from ..traces.locality import LocalityTraceGenerator

__all__ = [
    "ExperimentResult",
    "render_table",
    "locality_samplers",
    "speedup",
    "assert_policy_equivalence",
]


def assert_policy_equivalence(
    make_model: Callable[[], RecModel],
    make_server: Callable[[RecModel, str], object],
    policy_names: Sequence[str],
    batch_size: int = 4,
    seed: int = 17,
    rtol: float = 1e-4,
    atol: float = 1e-5,
) -> None:
    """Push one fixed batch through every sharding policy; pooled sums
    must agree (up to float32 accumulation order).

    Shared by ``experiments/ext_multi_ssd.py`` and
    ``benchmarks/bench_sharding.py`` so the equivalence contract (batch
    shape, tolerance) lives in one place.  ``make_server(model, name)``
    builds a fresh :class:`~repro.serving.InferenceServer` with ``model``
    registered under the named policy.
    """
    rng = np.random.default_rng(seed)
    batch = make_model().sample_batch(rng, batch_size)
    reference = None
    for policy_name in policy_names:
        model = make_model()
        server = make_server(model, policy_name)
        request = server.submit(model.name, batch)
        server.run_until_settled()
        if reference is None:
            reference = request.values
            continue
        for name in reference:
            if not np.allclose(
                request.values[name], reference[name], rtol=rtol, atol=atol
            ):
                raise AssertionError(
                    f"{policy_name} sharding changed pooled results for {name}"
                )


@dataclass
class ExperimentResult:
    experiment: str
    title: str
    rows: List[Dict[str, object]]
    notes: List[str] = field(default_factory=list)

    def to_text(self) -> str:
        header = f"== {self.experiment}: {self.title} =="
        body = render_table(self.rows)
        notes = "".join(f"\nnote: {n}" for n in self.notes)
        return f"{header}\n{body}{notes}"

    def column(self, key: str) -> List[object]:
        return [row[key] for row in self.rows]

    def filter(self, **conditions) -> List[Dict[str, object]]:
        out = []
        for row in self.rows:
            if all(row.get(k) == v for k, v in conditions.items()):
                out.append(row)
        return out


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def render_table(rows: Sequence[Dict[str, object]]) -> str:
    """Plain-text aligned table over the union of row keys."""
    if not rows:
        return "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    cells = [[_format_cell(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in cells)) for i, col in enumerate(columns)
    ]
    lines = [
        "  ".join(col.ljust(w) for col, w in zip(columns, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row_cells in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row_cells, widths)))
    return "\n".join(lines)


def locality_samplers(
    model: RecModel,
    k: float,
    seed: int = 0,
    universe: Optional[int] = 8192,
) -> tuple[Dict[str, IndexSampler], Dict[str, LocalityTraceGenerator]]:
    """Per-table locality-trace samplers for a model (Fig 10 inputs)."""
    generators: Dict[str, LocalityTraceGenerator] = {}
    samplers: Dict[str, IndexSampler] = {}
    for i, feature in enumerate(model.features):
        gen = LocalityTraceGenerator(
            table_rows=feature.spec.rows,
            k=k,
            seed=seed + 31 * i,
            universe=min(universe, feature.spec.rows) if universe else None,
        )
        generators[feature.name] = gen
        samplers[feature.name] = gen.generate
    return samplers, generators


def speedup(baseline_s: float, candidate_s: float) -> float:
    if candidate_s <= 0:
        return float("inf")
    return baseline_s / candidate_s
