"""Figure 6: end-to-end model latency with tables in DRAM vs SSD.

With operator pipelining (embedding prefetch overlapped with dense
compute), the MLP-dominated models — WND, MTWND, DIN, DIEN, NCF — run on
SSD-resident tables at ~DRAM latency (paper: 1.01-1.09x), while the
embedding-dominated DLRM-RMC models degrade by orders of magnitude.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..models import BackendKind, ModelRunner, RunnerConfig, build_model
from ..models.zoo import MODEL_NAMES
from .common import ExperimentResult, speedup

__all__ = ["run"]


def run(
    fast: bool = True,
    seed: int = 0,
    batch_size: int = 64,
    models: Sequence[str] = MODEL_NAMES,
) -> ExperimentResult:
    if fast:
        models = [m for m in models if m != "rm2"]
    n_batches = 3 if fast else 5
    rng = np.random.default_rng(seed)
    rows = []
    for name in models:
        batches = [build_model(name, seed=seed).sample_batch(rng, batch_size)
                   for _ in range(n_batches)]
        dram = ModelRunner(
            build_model(name, seed=seed), RunnerConfig(kind=BackendKind.DRAM)
        ).run_batches(batches)
        ssd = ModelRunner(
            build_model(name, seed=seed),
            RunnerConfig(kind=BackendKind.SSD, prewarm_page_cache=True),
        ).run_batches(batches)
        if not np.allclose(dram.outputs[-1], ssd.outputs[-1], rtol=1e-4, atol=1e-5):
            raise AssertionError(f"fig6: {name} SSD outputs diverge from DRAM")
        rows.append(
            {
                "model": name,
                "dram_ms": dram.steady_latency * 1e3,
                "ssd_ms": ssd.steady_latency * 1e3,
                "slowdown": speedup(ssd.steady_latency, dram.steady_latency),
                "ssd_emb_ms": ssd.mean_emb_latency * 1e3,
                "ssd_dense_ms": ssd.mean_dense_latency * 1e3,
            }
        )
    return ExperimentResult(
        experiment="fig6",
        title=f"End-to-end latency DRAM vs SSD (batch {batch_size}, pipelined)",
        rows=rows,
        notes=["slowdown = ssd / dram steady-state latency"],
    )


def main() -> None:  # pragma: no cover
    print(run(fast=True).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
