"""Table 1: differentiating benchmark parameters of RM1/RM2/RM3.

Prints the paper's table and cross-checks it against the actual built
models (feature size, indices per lookup, table count).
"""

from __future__ import annotations

from ..models import build_model
from ..models.zoo import table_one
from .common import ExperimentResult

__all__ = ["run"]


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    rows = []
    for entry in table_one():
        model = build_model(entry.benchmark.lower(), seed=seed)
        dims = {f.spec.dim for f in model.features}
        lookups = {f.lookups for f in model.features}
        if dims != {entry.feature_size}:
            raise AssertionError(f"{entry.benchmark}: dim mismatch {dims}")
        if lookups != {entry.indices}:
            raise AssertionError(f"{entry.benchmark}: indices mismatch {lookups}")
        if model.table_count() != entry.table_count:
            raise AssertionError(
                f"{entry.benchmark}: table count {model.table_count()}"
            )
        rows.append(
            {
                "benchmark": entry.benchmark,
                "feature_size": entry.feature_size,
                "indices": entry.indices,
                "table_count": entry.table_count,
                "model_verified": True,
            }
        )
    return ExperimentResult(
        experiment="table1",
        title="Differentiating benchmark parameters (verified against models)",
        rows=rows,
    )


def main() -> None:  # pragma: no cover
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
