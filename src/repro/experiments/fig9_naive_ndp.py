"""Figure 9: naive NDP speedup over baseline SSD across full models.

No pipelining, no host/SSD caching, random input indices: embedding-
dominated models gain up to several-x from NDP alone, MLP-dominated
models see no observable change.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..models import BackendKind, ModelRunner, RunnerConfig, build_model
from ..models.zoo import MODEL_NAMES
from .common import ExperimentResult, speedup

__all__ = ["run"]


def run(
    fast: bool = True,
    seed: int = 0,
    batch_size: int = 64,
    models: Sequence[str] = MODEL_NAMES,
) -> ExperimentResult:
    if fast:
        models = [m for m in models if m != "rm2"]
    n_batches = 2 if fast else 3
    rng = np.random.default_rng(seed)
    rows = []
    for name in models:
        batches = [build_model(name, seed=seed).sample_batch(rng, batch_size)
                   for _ in range(n_batches)]
        base = ModelRunner(
            build_model(name, seed=seed),
            RunnerConfig(
                kind=BackendKind.SSD, pipelined=False, prewarm_page_cache=True
            ),
        ).run_batches(batches)
        ndp = ModelRunner(
            build_model(name, seed=seed),
            RunnerConfig(
                kind=BackendKind.NDP, pipelined=False, prewarm_page_cache=True
            ),
        ).run_batches(batches)
        if not np.allclose(base.outputs[-1], ndp.outputs[-1], rtol=1e-4, atol=1e-5):
            raise AssertionError(f"fig9: {name} NDP outputs diverge from baseline")
        rows.append(
            {
                "model": name,
                "base_ms": base.steady_latency * 1e3,
                "ndp_ms": ndp.steady_latency * 1e3,
                "ndp_speedup": speedup(base.steady_latency, ndp.steady_latency),
            }
        )
    return ExperimentResult(
        experiment="fig9",
        title=f"Naive NDP speedup over baseline SSD (batch {batch_size}, serial)",
        rows=rows,
        notes=["no pipelining or caching; random indices"],
    )


def main() -> None:  # pragma: no cover
    print(run(fast=True).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
