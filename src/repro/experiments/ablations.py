"""Ablations of RecSSD design choices.

The paper motivates several design parameters without sweeping them; the
DESIGN.md inventory calls these out for ablation:

* ``translation_cost`` — Section 6.1: "with faster SSD microprocessors or
  custom logic, the Translation time could be significantly reduced".
  Sweeps the ARM per-byte/per-page translation cost from the calibrated
  A9 value down to near-zero (custom logic) and up (slower cores).
* ``channels`` — internal parallelism is the headline mechanism; sweeps
  the channel count to show NDP's advantage scales with it while the
  baseline (command-bound) barely moves.
* ``embcache`` — SSD-side direct-mapped cache size under a locality trace.
* ``window`` — the SLS scheduling layer's inflight-page window (buffer
  budget vs bandwidth utilization).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

import numpy as np

from ..core.engine import NdpEngineConfig
from ..embedding.backends import NdpSlsBackend, SsdSlsBackend
from ..embedding.spec import Layout, TableSpec
from ..embedding.table import EmbeddingTable
from ..ftl.cpu import FtlCpuCosts
from ..host.system import System
from ..ssd.presets import cosmos_plus_config
from ..traces.locality import LocalityTraceGenerator
from .common import ExperimentResult, speedup

__all__ = [
    "run_translation_cost",
    "run_channel_scaling",
    "run_embcache_size",
    "run_inflight_window",
    "run",
]

TABLE_ROWS = 1 << 16
DIM = 32
LOOKUPS = 40
BATCH = 32


def _build(
    channels: int = 8,
    cpu_costs: Optional[FtlCpuCosts] = None,
    ndp: Optional[NdpEngineConfig] = None,
) -> tuple[System, EmbeddingTable]:
    config = cosmos_plus_config(min_capacity_pages=TABLE_ROWS + (1 << 16), ndp=ndp)
    # Keep total capacity constant while varying channel count: fewer
    # channels get proportionally more blocks per die.
    scale = -(-config.geometry.channels // channels)
    geometry = replace(
        config.geometry,
        channels=channels,
        blocks_per_die=config.geometry.blocks_per_die * scale,
    )
    config = replace(config, geometry=geometry)
    if cpu_costs is not None:
        config = replace(config, cpu_costs=cpu_costs)
    system = System(config)
    table = EmbeddingTable(
        TableSpec("abl", rows=TABLE_ROWS, dim=DIM, layout=Layout.ONE_PER_PAGE),
        seed=3,
    )
    table.attach(system.device)
    return system, table


def _random_bags(seed: int = 0) -> List[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.integers(0, TABLE_ROWS, size=LOOKUPS) for _ in range(BATCH)]


def run_translation_cost(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """NDP latency vs the SSD CPU's translation speed (1x = ARM A9)."""
    scales = (0.0, 0.5, 1.0, 2.0) if fast else (0.0, 0.25, 0.5, 1.0, 2.0, 4.0)
    bags = _random_bags(seed)
    rows = []
    base_system, base_table = _build()
    base = SsdSlsBackend(base_system, base_table).run_sync(bags)
    for scale in scales:
        default = FtlCpuCosts()
        costs = replace(
            default,
            sls_translate_fixed_s=default.sls_translate_fixed_s * scale,
            sls_translate_byte_s=default.sls_translate_byte_s * scale,
            sls_pair_s=default.sls_pair_s * scale,
        )
        system, table = _build(cpu_costs=costs)
        ndp = NdpSlsBackend(system, table).run_sync(bags)
        if not np.allclose(ndp.values, base.values, rtol=1e-4, atol=1e-5):
            raise AssertionError("ablation: results diverged")
        rows.append(
            {
                "ablation": "translation_cost",
                "value": scale,
                "base_ms": base.latency * 1e3,
                "ndp_ms": ndp.latency * 1e3,
                "ndp_speedup": speedup(base.latency, ndp.latency),
            }
        )
    return ExperimentResult(
        "ablation_translation",
        "NDP speedup vs SSD-CPU translation cost (0 = custom logic)",
        rows,
    )


def run_channel_scaling(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """Internal parallelism: NDP tracks channel count, baseline does not."""
    channel_counts = (2, 8) if fast else (1, 2, 4, 8, 16)
    bags = _random_bags(seed)
    rows = []
    for channels in channel_counts:
        sys_b, tab_b = _build(channels=channels)
        sys_n, tab_n = _build(channels=channels)
        base = SsdSlsBackend(sys_b, tab_b).run_sync(bags)
        ndp = NdpSlsBackend(sys_n, tab_n).run_sync(bags)
        rows.append(
            {
                "ablation": "channels",
                "value": channels,
                "base_ms": base.latency * 1e3,
                "ndp_ms": ndp.latency * 1e3,
                "ndp_speedup": speedup(base.latency, ndp.latency),
            }
        )
    return ExperimentResult(
        "ablation_channels",
        "NDP vs baseline across flash channel counts",
        rows,
    )


def run_embcache_size(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """SSD-side cache size under a high-locality (K=0) trace."""
    slot_counts = (0, 4096, 65536) if fast else (0, 1024, 4096, 16384, 65536)
    gen_template = dict(table_rows=TABLE_ROWS, k=0, seed=seed, universe=4096)
    rows = []
    for slots in slot_counts:
        system, table = _build(ndp=NdpEngineConfig(embcache_slots=slots))
        gen = LocalityTraceGenerator(**gen_template)
        backend = NdpSlsBackend(system, table)
        latencies = []
        for _batch in range(3):
            bags = gen.generate_bags(BATCH, LOOKUPS)
            latencies.append(backend.run_sync(bags).latency)
        cache = system.device.ndp.emb_cache
        rows.append(
            {
                "ablation": "embcache_slots",
                "value": slots,
                "ndp_ms": latencies[-1] * 1e3,
                "hit_rate": cache.hit_rate,
            }
        )
    return ExperimentResult(
        "ablation_embcache",
        "SSD-side embedding cache size under a K=0 locality trace",
        rows,
    )


def run_inflight_window(fast: bool = True, seed: int = 0) -> ExperimentResult:
    """The SLS scheduler's inflight-page window (buffer vs parallelism)."""
    windows = (4, 32, 128) if fast else (2, 4, 8, 16, 32, 64, 128, 256)
    bags = _random_bags(seed)
    rows = []
    for window in windows:
        system, table = _build(ndp=NdpEngineConfig(inflight_pages_window=window))
        ndp = NdpSlsBackend(system, table).run_sync(bags)
        rows.append(
            {
                "ablation": "inflight_window",
                "value": window,
                "ndp_ms": ndp.latency * 1e3,
            }
        )
    return ExperimentResult(
        "ablation_window",
        "NDP latency vs SLS scheduling window size",
        rows,
    )


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    parts = [
        run_translation_cost(fast=fast, seed=seed),
        run_channel_scaling(fast=fast, seed=seed),
        run_embcache_size(fast=fast, seed=seed),
        run_inflight_window(fast=fast, seed=seed),
    ]
    rows = [row for part in parts for row in part.rows]
    return ExperimentResult(
        "ablations",
        "Design-choice ablations (translation cost, channels, caches, window)",
        rows,
    )


def main() -> None:  # pragma: no cover
    print(run(fast=True).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
