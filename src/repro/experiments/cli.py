"""Experiment CLI: ``python -m repro.experiments <id> [--full] [--seed N]``.

Runs the reproduction of each paper table/figure and prints the result
rows as an aligned text table.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from . import (
    ablations,
    calibration,
    ext_multi_ssd,
    ext_qos,
    fig3_reuse,
    fig4_locality,
    fig5_sls,
    fig6_end_to_end,
    fig8_breakdown,
    fig9_naive_ndp,
    fig10_caching,
    fig11_sensitivity,
    table1_params,
)
from .common import ExperimentResult

__all__ = ["REGISTRY", "run_experiment", "main"]

REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {
    "fig3": fig3_reuse.run,
    "fig4": fig4_locality.run,
    "fig5": fig5_sls.run,
    "fig6": fig6_end_to_end.run,
    "table1": table1_params.run,
    "fig8": fig8_breakdown.run,
    "fig9": fig9_naive_ndp.run,
    "fig10": fig10_caching.run,
    "fig11": fig11_sensitivity.run,
    "ablations": ablations.run,
    "calibration": calibration.run,
    "multi_ssd": ext_multi_ssd.run,
    "qos": ext_qos.run,
}


def run_experiment(name: str, fast: bool = True, seed: int = 0) -> ExperimentResult:
    try:
        runner = REGISTRY[name]
    except KeyError:
        raise SystemExit(
            f"unknown experiment {name!r}; choose from {sorted(REGISTRY)} or 'all'"
        )
    return runner(fast=fast, seed=seed)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="recssd-experiments",
        description="Reproduce the RecSSD paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment ids ({', '.join(sorted(REGISTRY))}) or 'all'",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="full parameter sweeps (slow); default is the fast subset",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    names = list(REGISTRY) if "all" in args.experiments else args.experiments
    for name in names:
        start = time.time()
        result = run_experiment(name, fast=not args.full, seed=args.seed)
        print(result.to_text())
        print(f"({name} took {time.time() - start:.1f}s)\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
