"""Extension: QoS admission policies and client models under load.

The paper's serving claim is latency-bounded (Section 2): a deployment
provisions against a tail-latency SLA, and MicroRec/RecNMP frame the
useful metric as *goodput* — requests completed within their deadline —
not raw throughput.  This extension measures, on one embedding-dominated
model served over the NDP path:

1. **Admission policies under 2x overload** — the same open-loop Poisson
   traffic at twice the measured capacity, shed three ways
   (:mod:`repro.serving.admission`):

   * ``reject`` — the seed behaviour: reject at the in-flight limit,
     serve everything admitted even when its deadline already passed.
   * ``deadline`` — deadline-aware early drop: queued requests whose SLO
     expired are shed at dispatch time, so device work goes to requests
     that can still convert into goodput.
   * ``priority`` — two tenants (one latency-critical on a priority
     lane, one bulk) with deadline drop; the hi lane should keep its
     goodput while the lo lane degrades.

   The headline claim (asserted by ``benchmarks/bench_qos.py`` and a
   tier-1 test): **deadline-aware admission achieves strictly higher
   goodput than reject-at-limit at equal overload.**

2. **Open- vs closed-loop latency-vs-load curves** — open-loop arrivals
   (rate swept past saturation) versus closed-loop client populations
   (population swept, think time fixed) through
   :mod:`repro.workload.generators`.  Open-loop tails diverge past
   saturation; closed-loop load self-throttles, so its tail stays
   bounded — the reason overload studies need open loops and capacity
   studies need closed ones.

3. **Host-contention sweep** (:mod:`repro.serving.hostpool`) — the same
   open-loop load at 0.5x and 2x capacity served with 1/2/4/∞ dense-stage
   NN workers (dense service inflated by ``DENSE_TIME_SCALE`` so the
   dense tower is a realistic fraction of request service, after the
   paper's Fig 6 model mix), plus a bounded host SLS worker pool at
   saturation.  The contract (asserted by
   ``benchmarks/bench_serving_throughput.py``): **bounding either host
   pool strictly increases p99 at saturation** — the seed's free overlap
   of per-table gathers and its cost-free dense concurrency flatter the
   host exactly where RecNMP says CPU/memory contention bites.

Everything runs through :func:`repro.workload.run_scenario` /
:func:`repro.workload.run_workload` — declarative scenarios driving the
full serving path — and is deterministic for a fixed seed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..models.dlrm import DlrmConfig, DlrmModel
from ..traces.analysis import interarrival_stats
from ..workload import ScenarioResult, ScenarioSpec, TenantSpec, run_scenario
from .common import ExperimentResult

__all__ = [
    "run",
    "calibrate",
    "run_admission_policy",
    "run_host_contention",
    "ADMISSION_POLICIES",
    "DENSE_WORKER_SWEEP",
    "DENSE_TIME_SCALE",
]

BATCH_SIZE = 2
MAX_INFLIGHT = 48
# One shared host dispatch pool for every policy: a single-tenant run
# fills it exactly like the seed's per-worker limit (2), and the
# two-tenant priority run arbitrates the *same* pool — which is what a
# priority lane needs to mean anything (freed slots go hi-class-first).
DISPATCH_POOL = 2
OVERLOAD_X = 2.0
# SLO = this multiple of the lightly-loaded p95 (self-calibrating: the
# deadline is comfortably achievable without queueing, hopeless with it).
SLO_X = 2.5
# Early-drop headroom as a fraction of the SLO: only dispatch requests
# whose remaining slack exceeds this.  Must stay < 1 (at >= 1 every
# request is "doomed" on arrival); 0.8 means a dispatched request still
# has ~2x the unloaded p95 left to finish in.
HEADROOM_FRAC = 0.8

ADMISSION_POLICIES = ("reject", "deadline", "priority")

# Host-contention sweep knobs: dense-stage pool sizes (0 = unbounded,
# the "∞" point) and a dense service-time multiplier that makes the toy
# model's dense tower a realistic fraction of per-request service (the
# unscaled toy MLP is ~15 us vs ~1 ms of embedding work; production
# model mixes in the paper/RecNMP put the dense stage at a meaningful
# share of request latency).
DENSE_WORKER_SWEEP = (1, 2, 4, 0)
DENSE_TIME_SCALE = 64.0
SLS_WORKER_SWEEP = (1, 2, None)


def _qos_model(name: str = "qos-rm", seed: int = 1) -> DlrmModel:
    """A small embedding-dominated DLRM (the serving benchmark shape)."""
    return DlrmModel(
        DlrmConfig(
            name=name,
            dense_in=16,
            bottom_mlp=(32, 16),
            top_mlp=(32, 16),
            num_tables=2,
            table_rows=8192,
            dim=16,
            lookups=16,
        ),
        seed=seed,
    )


def _scenario(
    name: str,
    tenants: Tuple[TenantSpec, ...],
    seed: int,
    deadline_drop: bool = False,
    drop_headroom_s: float = 0.0,
    **host_knobs,
) -> ScenarioSpec:
    """``host_knobs`` pass through to the spec's host resource model
    (``host_sls_workers`` / ``dense_workers`` / ``dense_time_scale``)."""
    return ScenarioSpec(
        name=name,
        tenants=tenants,
        backend="ndp",
        max_inflight_requests=MAX_INFLIGHT,
        max_batch_requests=4,
        max_inflight_batches_total=DISPATCH_POOL,
        deadline_drop=deadline_drop,
        drop_headroom_s=drop_headroom_s,
        seed=seed,
        **host_knobs,
    )


def calibrate(seed: int = 0, n_requests: int = 24) -> Dict[str, float]:
    """Measure the model's serving capacity and unloaded tail.

    Capacity comes from a zero-think closed loop (8 clients keep the
    pipeline saturated without unbounded queueing); the unloaded p95
    from a light open-loop run.  Both are deterministic for a seed and
    anchor the overload/SLO knobs of every policy comparison.
    """
    closed = run_scenario(
        _scenario(
            "calibrate-capacity",
            (
                TenantSpec(
                    model="qos-rm",
                    arrival="closed",
                    num_clients=8,
                    requests_per_client=max(2, n_requests // 8),
                    think_time_s=0.0,
                    batch_size=BATCH_SIZE,
                ),
            ),
            seed=seed,
        ),
        [_qos_model()],
    )
    capacity_rps = closed.summary["throughput_rps"]
    light = run_scenario(
        _scenario(
            "calibrate-light",
            (
                TenantSpec(
                    model="qos-rm",
                    arrival="open",
                    rate=max(capacity_rps * 0.2, 1.0),
                    n_requests=n_requests,
                    batch_size=BATCH_SIZE,
                ),
            ),
            seed=seed,
        ),
        [_qos_model()],
    )
    light_p95_s = light.summary["p95_ms"] * 1e-3
    slo_s = SLO_X * light_p95_s
    return {
        "capacity_rps": capacity_rps,
        "light_p95_ms": light.summary["p95_ms"],
        "slo_s": slo_s,
        # Early-drop headroom: a queued request whose remaining slack is
        # below this cannot realistically finish in time under load —
        # dispatching it would spend device work on a guaranteed
        # deadline miss.  0.8x SLO leaves a dispatched request ~2x the
        # unloaded p95 to complete in.
        "headroom_s": HEADROOM_FRAC * slo_s,
        "overload_rps": OVERLOAD_X * capacity_rps,
    }


def run_admission_policy(
    policy: str,
    calibration: Dict[str, float],
    n_requests: int = 96,
    seed: int = 0,
) -> Tuple[Dict[str, object], ScenarioResult]:
    """One overload run under ``policy``; returns (report row, result).

    All three policies see the same total offered rate
    (``overload_rps``) and the same SLO; they differ only in how load is
    shed.  ``priority`` splits the traffic over two tenants — a
    latency-critical quarter on a priority lane and a bulk remainder —
    so its row carries per-lane goodput columns too.
    """
    slo = calibration["slo_s"]
    rate = calibration["overload_rps"]
    if policy in ("reject", "deadline"):
        tenants: Tuple[TenantSpec, ...] = (
            TenantSpec(
                model="qos-rm",
                arrival="open",
                rate=rate,
                n_requests=n_requests,
                batch_size=BATCH_SIZE,
                slo_s=slo,
            ),
        )
        models = [_qos_model()]
    elif policy == "priority":
        hi_share = 0.25
        tenants = (
            TenantSpec(
                model="qos-hi",
                arrival="open",
                rate=rate * hi_share,
                n_requests=int(n_requests * hi_share),
                batch_size=BATCH_SIZE,
                slo_s=slo,
                priority=1,
            ),
            TenantSpec(
                model="qos-lo",
                arrival="open",
                rate=rate * (1 - hi_share),
                n_requests=n_requests - int(n_requests * hi_share),
                batch_size=BATCH_SIZE,
                slo_s=slo,
            ),
        )
        models = [_qos_model("qos-hi", seed=1), _qos_model("qos-lo", seed=2)]
    else:
        raise ValueError(f"unknown admission policy {policy!r}")
    drops = policy in ("deadline", "priority")
    result = run_scenario(
        _scenario(
            f"admission-{policy}",
            tenants,
            seed=seed,
            deadline_drop=drops,
            drop_headroom_s=calibration["headroom_s"] if drops else 0.0,
        ),
        models,
    )
    summary = result.summary
    row: Dict[str, object] = {
        "kind": "admission",
        "policy": policy,
        "offered_rps": rate,
        "goodput_rps": summary["goodput_rps"],
        "goodput_frac": summary["goodput"] / summary["submitted"],
        "throughput_rps": summary["throughput_rps"],
        "p95_ms": summary["p95_ms"],
        "completed": summary["completed"],
        "dropped": summary["dropped"],
        "rejected": summary["rejected"],
    }
    if policy == "priority":
        row["hi_goodput_frac"] = result.lane("qos-hi")["goodput_frac"]
        row["lo_goodput_frac"] = result.lane("qos-lo")["goodput_frac"]
    return row, result


def _load_curve_rows(
    calibration: Dict[str, float], fast: bool, seed: int
) -> List[Dict[str, object]]:
    """Open-loop rate sweep vs closed-loop population sweep."""
    rows: List[Dict[str, object]] = []
    capacity = calibration["capacity_rps"]
    open_n = 48 if fast else 120
    for load_x in (0.25, 0.5, 1.0, 2.0):
        result = run_scenario(
            _scenario(
                f"open-{load_x}x",
                (
                    TenantSpec(
                        model="qos-rm",
                        arrival="open",
                        rate=capacity * load_x,
                        n_requests=open_n,
                        batch_size=BATCH_SIZE,
                    ),
                ),
                seed=seed,
            ),
            [_qos_model()],
        )
        rows.append(
            {
                "kind": "loadcurve",
                "mode": "open",
                "load": load_x,
                "offered_rps": capacity * load_x,
                "achieved_rps": result.summary["throughput_rps"],
                "p95_ms": result.summary["p95_ms"],
                # Realized arrival-process shape: Poisson open loop has
                # CV ~= 1 regardless of how overloaded the server is.
                "arrival_cv": interarrival_stats(
                    result.stats.arrival_times
                )["cv"],
            }
        )
    # Closed loop: think time sized so the largest population offers
    # roughly the same 2x-capacity demand as the open-loop sweep's top.
    think = 4.0 / capacity
    for clients in (1, 2, 4, 8):
        per_client = max(3, open_n // (2 * clients))
        result = run_scenario(
            _scenario(
                f"closed-{clients}c",
                (
                    TenantSpec(
                        model="qos-rm",
                        arrival="closed",
                        num_clients=clients,
                        requests_per_client=per_client,
                        think_time_s=think,
                        batch_size=BATCH_SIZE,
                    ),
                ),
                seed=seed,
            ),
            [_qos_model()],
        )
        rows.append(
            {
                "kind": "loadcurve",
                "mode": "closed",
                "load": clients,
                "offered_rps": clients / think,
                "achieved_rps": result.summary["throughput_rps"],
                "p95_ms": result.summary["p95_ms"],
                # Closed-loop arrivals are response-gated, not Poisson.
                "arrival_cv": interarrival_stats(
                    result.stats.arrival_times
                )["cv"],
            }
        )
    return rows


def _host_scenario(
    name: str,
    rate: float,
    n_requests: int,
    seed: int,
    dense_workers: Optional[int] = None,
    host_sls_workers: Optional[int] = None,
) -> ScenarioSpec:
    """One open-loop tenant with the host resource model under study.

    No dispatch-pool cap (``max_inflight_batches_total=None``): the host
    pools themselves are the contended resource here, and a narrow
    dispatch pool would mask their queueing.
    """
    return ScenarioSpec(
        name=name,
        tenants=(
            TenantSpec(
                model="qos-rm",
                arrival="open",
                rate=rate,
                n_requests=n_requests,
                batch_size=BATCH_SIZE,
            ),
        ),
        backend="ndp",
        max_inflight_requests=MAX_INFLIGHT,
        max_batch_requests=4,
        dense_workers=dense_workers,
        host_sls_workers=host_sls_workers,
        dense_time_scale=DENSE_TIME_SCALE,
        seed=seed,
    )


def run_host_contention(
    calibration: Dict[str, float], n_requests: int = 48, seed: int = 0
) -> List[Dict[str, object]]:
    """Latency vs offered load at 1/2/4/∞ dense workers, plus a bounded
    host SLS pool at saturation; one report row per run with the pool's
    utilization and mean wait from ``hostpool_summary()``."""
    rows: List[Dict[str, object]] = []
    capacity = calibration["capacity_rps"]
    for workers in DENSE_WORKER_SWEEP:
        for load_x in (0.5, 2.0):
            label = "inf" if workers == 0 else str(workers)
            result = run_scenario(
                _host_scenario(
                    f"dense-{label}w-{load_x}x",
                    rate=capacity * load_x,
                    n_requests=n_requests,
                    seed=seed,
                    dense_workers=workers,
                ),
                [_qos_model()],
            )
            host = result.server.hostpool_summary()["dense"]
            rows.append(
                {
                    "kind": "hostpool",
                    "resource": "dense",
                    "workers": label,
                    "load": load_x,
                    "offered_rps": capacity * load_x,
                    "throughput_rps": result.summary["throughput_rps"],
                    "p95_ms": result.summary["p95_ms"],
                    "p99_ms": result.summary["p99_ms"],
                    "mean_wait_ms": host["mean_wait_ms"],
                    "utilization": host["utilization"],
                }
            )
    for workers in SLS_WORKER_SWEEP:
        label = "inf" if workers is None else str(workers)
        result = run_scenario(
            _host_scenario(
                f"sls-{label}w-2x",
                rate=capacity * 2.0,
                n_requests=n_requests,
                seed=seed,
                # Unbounded dense pool: isolate the SLS workers as the
                # only contended host resource in these rows.
                dense_workers=0,
                host_sls_workers=workers,
            ),
            [_qos_model()],
        )
        host = result.server.hostpool_summary()["host_sls"]
        rows.append(
            {
                "kind": "hostpool",
                "resource": "host_sls",
                "workers": label,
                "load": 2.0,
                "offered_rps": capacity * 2.0,
                "throughput_rps": result.summary["throughput_rps"],
                "p95_ms": result.summary["p95_ms"],
                "p99_ms": result.summary["p99_ms"],
                "mean_wait_ms": host["mean_wait_ms"],
                "utilization": host["utilization"],
            }
        )
    return rows


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    calibration = calibrate(seed=seed)
    n_requests = 96 if fast else 240
    rows: List[Dict[str, object]] = []
    for policy in ADMISSION_POLICIES:
        row, _result = run_admission_policy(
            policy, calibration, n_requests=n_requests, seed=seed
        )
        rows.append(row)
    rows.extend(_load_curve_rows(calibration, fast, seed))
    rows.extend(
        run_host_contention(
            calibration, n_requests=48 if fast else 120, seed=seed
        )
    )
    return ExperimentResult(
        "ext_qos",
        "QoS admission (goodput under 2x overload) + open/closed load "
        "curves + host-pool contention sweep",
        rows,
        notes=[
            "extension beyond the paper (SLO-centric serving, after "
            "MicroRec/RecNMP's goodput framing)",
            f"capacity {calibration['capacity_rps']:.0f} rps, "
            f"SLO {calibration['slo_s'] * 1e3:.2f} ms "
            f"({SLO_X}x light-load p95), overload {OVERLOAD_X}x",
            "goodput = completed within SLO deadline; drop reasons in "
            "ServingStats.drops_by_reason",
            "hostpool rows: dense pool swept 1/2/4/inf workers (dense "
            f"service x{DENSE_TIME_SCALE:.0f}), host SLS pool bounded at "
            "saturation; bounded host pools strictly raise p99 at 2x load",
        ],
    )


def main() -> None:  # pragma: no cover
    print(run(fast=True).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
