"""Per-table/figure experiment runners (see DESIGN.md's experiment index)."""

from .common import ExperimentResult, render_table

__all__ = ["ExperimentResult", "render_table"]
