"""Extension: multi-SSD scale-out (the paper's stated future direction).

The prototype "limits us to single-model single-SSD systems" (Section 5).
This extension shards a model's embedding tables across N simulated
RecSSDs attached to one host and measures the embedding-stage latency as
devices are added.  Each device contributes its own FTL CPU and flash
channels, so NDP throughput scales with device count until the host-side
costs dominate — quantifying how far the single-SSD limitation matters.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..embedding.backends import NdpSlsBackend, SsdSlsBackend
from ..embedding.spec import Layout, TableSpec
from ..embedding.stage import EmbeddingStage
from ..embedding.table import EmbeddingTable
from ..host.system import System
from ..ssd.presets import cosmos_plus_config
from .common import ExperimentResult, speedup

__all__ = ["run"]

NUM_TABLES = 8
TABLE_ROWS = 1 << 16
DIM = 32
LOOKUPS = 40
BATCH = 32


def _build_sharded(n_devices: int, kind: str) -> tuple[System, EmbeddingStage]:
    per_device_pages = (NUM_TABLES // n_devices + 1) * TABLE_ROWS + (1 << 16)
    system = System(cosmos_plus_config(min_capacity_pages=per_device_pages))
    for _ in range(n_devices - 1):
        system.add_device(cosmos_plus_config(min_capacity_pages=per_device_pages))
    backends = {}
    for i in range(NUM_TABLES):
        table = EmbeddingTable(
            TableSpec(f"shard{i}", rows=TABLE_ROWS, dim=DIM, layout=Layout.ONE_PER_PAGE),
            seed=100 + i,
        )
        table.attach(system.devices[i % n_devices])
        if kind == "ndp":
            backends[table.spec.name] = NdpSlsBackend(system, table)
        else:
            backends[table.spec.name] = SsdSlsBackend(system, table)
    return system, EmbeddingStage(backends)


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    device_counts = (1, 2, 4) if fast else (1, 2, 4, 8)
    rng = np.random.default_rng(seed)
    bags: Dict[str, List[np.ndarray]] = {
        f"shard{i}": [rng.integers(0, TABLE_ROWS, size=LOOKUPS) for _ in range(BATCH)]
        for i in range(NUM_TABLES)
    }
    reference = None
    rows = []
    for n_devices in device_counts:
        results = {}
        for kind in ("ssd", "ndp"):
            system, stage = _build_sharded(n_devices, kind)
            results[kind] = stage.run_sync(bags)
        values = results["ndp"].values
        if reference is None:
            reference = values
        else:
            for name in reference:
                if not np.allclose(values[name], reference[name], rtol=1e-4, atol=1e-5):
                    raise AssertionError("multi-SSD sharding changed results")
        rows.append(
            {
                "devices": n_devices,
                "base_ms": results["ssd"].latency * 1e3,
                "ndp_ms": results["ndp"].latency * 1e3,
                "ndp_speedup": speedup(
                    results["ssd"].latency, results["ndp"].latency
                ),
            }
        )
    return ExperimentResult(
        "ext_multi_ssd",
        f"Embedding stage latency sharding {NUM_TABLES} tables over N RecSSDs",
        rows,
        notes=["extension beyond the paper (its prototype is single-SSD)"],
    )


def main() -> None:  # pragma: no cover
    print(run(fast=True).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
