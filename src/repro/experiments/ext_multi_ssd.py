"""Extension: multi-SSD scale-out (the paper's stated future direction).

The prototype "limits us to single-model single-SSD systems" (Section 5).
This extension measures two things as simulated RecSSDs are added to one
host:

1. **Embedding-stage latency** with a model's tables spread across N
   devices (the original extension): each device contributes its own FTL
   CPU and flash channels, so NDP throughput scales with device count
   until host-side costs dominate.
2. **Serving-layer policy comparison** (ISSUE 3): the same table set is
   served through :class:`~repro.serving.InferenceServer` under the
   three :mod:`repro.serving.sharding` policies — whole-model
   replication, whole-table sharding and row sharding — and the
   throughput of each is recorded per device count.  Replication scales
   by round-robining whole batches across copies; the sharding policies
   scale by splitting every batch across devices (scatter-gather), which
   also removes the N-fold storage overhead of replication.

Pooled embedding results are asserted equivalent across device counts
and across policies (up to float32 accumulation order).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..core.engine import NdpEngineConfig
from ..embedding.backends import NdpSlsBackend, SsdSlsBackend
from ..embedding.spec import Layout, TableSpec
from ..embedding.stage import EmbeddingStage
from ..embedding.table import EmbeddingTable
from ..host.system import System
from ..models.dlrm import DlrmConfig, DlrmModel
from ..models.runner import BackendKind, required_capacity_pages
from ..serving import (
    InferenceServer,
    ReplicatePolicy,
    RowShardPolicy,
    ServingConfig,
    TableShardPolicy,
    run_offered_load,
)
from ..ssd.presets import cosmos_plus_config
from .common import ExperimentResult, assert_policy_equivalence, speedup

__all__ = ["run"]

NUM_TABLES = 8
TABLE_ROWS = 1 << 16
DIM = 32
LOOKUPS = 40
BATCH = 32

# Serving comparison shape: enough concurrent small requests that
# coalescing and cross-device dispatch both engage.
SERVE_REQUESTS = 24
SERVE_BATCH = 4
SERVE_RATE = 4000.0

POLICIES = {
    "replicate": lambda: ReplicatePolicy(),
    "table": lambda: TableShardPolicy(),
    "row": lambda: RowShardPolicy(threshold_rows=TABLE_ROWS // 2),
}


def _build_sharded(n_devices: int, kind: str) -> tuple[System, EmbeddingStage]:
    per_device_pages = (NUM_TABLES // n_devices + 1) * TABLE_ROWS + (1 << 16)
    system = System(cosmos_plus_config(min_capacity_pages=per_device_pages))
    for _ in range(n_devices - 1):
        system.add_device(cosmos_plus_config(min_capacity_pages=per_device_pages))
    backends = {}
    for i in range(NUM_TABLES):
        table = EmbeddingTable(
            TableSpec(f"shard{i}", rows=TABLE_ROWS, dim=DIM, layout=Layout.ONE_PER_PAGE),
            seed=100 + i,
        )
        table.attach(system.devices[i % n_devices])
        if kind == "ndp":
            backends[table.spec.name] = NdpSlsBackend(system, table)
        else:
            backends[table.spec.name] = SsdSlsBackend(system, table)
    return system, EmbeddingStage(backends)


def _serve_model() -> DlrmModel:
    return DlrmModel(
        DlrmConfig(
            name="rm-shard",
            dense_in=16,
            bottom_mlp=(32, 16),
            top_mlp=(32, 16),
            num_tables=NUM_TABLES,
            table_rows=TABLE_ROWS,
            dim=DIM,
            lookups=LOOKUPS // 4,
        ),
        seed=5,
    )


def _serve_server(model: DlrmModel, policy_name: str, n_devices: int) -> InferenceServer:
    system = System(
        cosmos_plus_config(
            min_capacity_pages=required_capacity_pages(model),
            ndp=NdpEngineConfig(queue_when_full=True),
        )
    )
    server = InferenceServer(
        system,
        # dense_stage off: this comparison isolates how the *embedding*
        # stage scales with devices (the dense tower is device-agnostic).
        ServingConfig(max_batch_requests=4, dense_stage=False),
    )
    server.register_model(
        model,
        BackendKind.NDP,
        num_workers=n_devices,
        sharding=POLICIES[policy_name](),
    )
    return server


def _serve_policy(n_devices: int, policy_name: str, seed: int) -> float:
    """Offered-load throughput (req/s) under one sharding policy."""
    model = _serve_model()
    server = _serve_server(model, policy_name, n_devices)
    stats = run_offered_load(
        server,
        {model.name: SERVE_RATE},
        n_requests=SERVE_REQUESTS,
        batch_size=SERVE_BATCH,
        seed=seed,
    )
    return stats.throughput_rps()


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    device_counts = (1, 2, 4) if fast else (1, 2, 4, 8)
    rng = np.random.default_rng(seed)
    bags: Dict[str, List[np.ndarray]] = {
        f"shard{i}": [rng.integers(0, TABLE_ROWS, size=LOOKUPS) for _ in range(BATCH)]
        for i in range(NUM_TABLES)
    }
    reference = None
    rows = []
    assert_policy_equivalence(
        _serve_model,
        lambda model, name: _serve_server(model, name, max(device_counts)),
        list(POLICIES),
        batch_size=SERVE_BATCH,
        seed=seed,
    )
    for n_devices in device_counts:
        results = {}
        for kind in ("ssd", "ndp"):
            system, stage = _build_sharded(n_devices, kind)
            results[kind] = stage.run_sync(bags)
        values = results["ndp"].values
        if reference is None:
            reference = values
        else:
            for name in reference:
                if not np.allclose(values[name], reference[name], rtol=1e-4, atol=1e-5):
                    raise AssertionError("multi-SSD sharding changed results")
        row = {
            "devices": n_devices,
            "base_ms": results["ssd"].latency * 1e3,
            "ndp_ms": results["ndp"].latency * 1e3,
            "ndp_speedup": speedup(
                results["ssd"].latency, results["ndp"].latency
            ),
        }
        for policy_name in POLICIES:
            row[f"serve_{policy_name}_rps"] = _serve_policy(
                n_devices, policy_name, seed=seed
            )
        rows.append(row)
    return ExperimentResult(
        "ext_multi_ssd",
        f"Embedding latency + serving policy throughput, {NUM_TABLES} tables over N RecSSDs",
        rows,
        notes=[
            "extension beyond the paper (its prototype is single-SSD)",
            "serve_*_rps: offered-load throughput under repro.serving.sharding "
            "policies (replicate vs whole-table vs row scatter-gather)",
        ],
    )


def main() -> None:  # pragma: no cover
    print(run(fast=True).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
