"""Figure 5: a single SLS operator, DRAM vs COTS SSD, across batch sizes.

The paper's configuration: one embedding table of 1M rows x 32 features,
80 lookups per sample.  Storing the table on a conventional SSD makes the
operator ~3 orders of magnitude slower than DRAM — software/command
overheads plus the ~10K IOPS whole-stack random-read ceiling vs ~1GB/s
DRAM gathers.
"""

from __future__ import annotations

import numpy as np

from ..embedding.backends import DramSlsBackend, SsdSlsBackend
from ..embedding.spec import Layout, TableSpec
from ..embedding.table import EmbeddingTable
from ..host.system import build_system
from .common import ExperimentResult, speedup

__all__ = ["run"]


def run(
    fast: bool = True,
    seed: int = 0,
    table_rows: int = 1 << 20,
    dim: int = 32,
    lookups: int = 80,
) -> ExperimentResult:
    batch_sizes = (1, 8, 64) if fast else (1, 4, 16, 64, 256)
    rng = np.random.default_rng(seed)
    rows = []
    for batch in batch_sizes:
        system = build_system(min_capacity_pages=table_rows + (1 << 16))
        table = EmbeddingTable(
            TableSpec("fig5", rows=table_rows, dim=dim, layout=Layout.ONE_PER_PAGE),
            seed=seed,
        )
        table.attach(system.device)
        bags = [
            rng.integers(0, table_rows, size=lookups, dtype=np.int64)
            for _ in range(batch)
        ]
        dram = DramSlsBackend(system, table).run_sync(bags)
        ssd = SsdSlsBackend(system, table).run_sync(bags)
        if not np.allclose(dram.values, ssd.values, rtol=1e-4, atol=1e-5):
            raise AssertionError("fig5: SSD result diverges from DRAM reference")
        rows.append(
            {
                "batch": batch,
                "dram_ms": dram.latency * 1e3,
                "ssd_ms": ssd.latency * 1e3,
                "slowdown": speedup(ssd.latency, dram.latency),
                "ssd_commands": ssd.stats.get("commands", 0.0),
            }
        )
    return ExperimentResult(
        experiment="fig5",
        title="SparseLengthsSum latency: DRAM vs SSD (1M x 32 table, 80 lookups)",
        rows=rows,
    )


def main() -> None:  # pragma: no cover
    print(run(fast=True).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
