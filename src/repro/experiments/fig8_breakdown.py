"""Figure 8: standalone SLS operator, SEQ vs STR, baseline vs NDP, with the
FTL time breakdown (Config Write / Config Process / Translation / Flash Read).

SEQ uses contiguous embedding ids (high spatial locality: many vectors per
flash page touched); STR strides by one flash page per vector so every
lookup hits a distinct page.  NDP wins on STR (internal bandwidth + fewer
commands, up to ~4x) and loses on SEQ (the slow ARM does the aggregation
the host CPU would do nearly for free).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..embedding.backends import NdpSlsBackend, SsdSlsBackend
from ..embedding.spec import Layout, TableSpec
from ..embedding.table import EmbeddingTable
from ..host.system import build_system
from .common import ExperimentResult, speedup

__all__ = ["run", "make_pattern_bags"]

PATTERNS = ("SEQ", "STR")


def make_pattern_bags(
    pattern: str,
    batch: int,
    lookups: int,
    table_rows: int,
    rows_per_page: int,
    rng: np.random.Generator,
) -> List[np.ndarray]:
    """SEQ: contiguous ids; STR: one id per flash page (strided)."""
    bags = []
    for b in range(batch):
        if pattern == "SEQ":
            base = int(rng.integers(0, table_rows - lookups))
            ids = np.arange(base, base + lookups, dtype=np.int64)
        elif pattern == "STR":
            start_page = b * lookups
            pages = (start_page + np.arange(lookups, dtype=np.int64)) % (
                table_rows // rows_per_page
            )
            ids = pages * rows_per_page
        else:
            raise ValueError(f"unknown pattern {pattern!r}")
        bags.append(ids)
    return bags


def run(
    fast: bool = True,
    seed: int = 0,
    dim: int = 32,
    lookups: int = 80,
) -> ExperimentResult:
    table_rows = (1 << 19) if fast else (1 << 21)
    batch_sizes = (16, 64) if fast else (8, 32, 64, 128, 256)
    rng = np.random.default_rng(seed)
    rows = []
    for pattern in PATTERNS:
        for batch in batch_sizes:
            # Separate systems per backend so the baseline run cannot warm
            # the device page cache for the NDP run (or vice versa).
            def fresh() -> tuple:
                system = build_system(min_capacity_pages=table_rows // 64 + (1 << 16))
                table = EmbeddingTable(
                    TableSpec("fig8", rows=table_rows, dim=dim, layout=Layout.PACKED),
                    seed=seed,
                )
                table.attach(system.device)
                return system, table

            sys_base, table_base = fresh()
            sys_ndp, table_ndp = fresh()
            bags = make_pattern_bags(
                pattern, batch, lookups, table_rows, table_base.rows_per_page, rng
            )
            base = SsdSlsBackend(sys_base, table_base).run_sync(bags)
            ndp = NdpSlsBackend(sys_ndp, table_ndp).run_sync(bags)
            if not np.allclose(base.values, ndp.values, rtol=1e-4, atol=1e-5):
                raise AssertionError("fig8: NDP result diverges from baseline")
            bd = ndp.breakdown
            rows.append(
                {
                    "pattern": pattern,
                    "batch": batch,
                    "base_ms": base.latency * 1e3,
                    "ndp_ms": ndp.latency * 1e3,
                    "ndp_speedup": speedup(base.latency, ndp.latency),
                    "config_write_ms": bd.get("config_write") * 1e3,
                    "config_process_ms": bd.get("config_process") * 1e3,
                    "translation_ms": bd.get("translation") * 1e3,
                    "flash_read_ms": bd.get("flash_read") * 1e3,
                    "flash_pages": ndp.stats.get("flash_pages_read", 0.0),
                    "base_commands": base.stats.get("commands", 0.0),
                }
            )
    return ExperimentResult(
        experiment="fig8",
        title="SLS operator microbenchmark: SEQ/STR x baseline/NDP + FTL breakdown",
        rows=rows,
    )


def main() -> None:  # pragma: no cover
    print(run(fast=True).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
