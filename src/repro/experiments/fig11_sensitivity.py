"""Figure 11: sensitivity of NDP benefit to model parameters.

(a) Feature size and quantization: as the embedding vector's share of a
    flash page grows, the SSD CPU does more accumulation work per page
    while the baseline's block reads stay constant, so relative NDP
    performance decreases.
(b) Indices per lookup amortize the per-operation control overhead and
    increase on-SSD accumulation value (speedup grows); table count
    splits the work into more NDP calls with per-table overheads
    (speedup mildly shrinks).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..models import BackendKind, DlrmConfig, DlrmModel, ModelRunner, RunnerConfig
from ..quant import EmbDtype, QuantSpec
from ..embedding.spec import Layout, TableSpec
from .common import ExperimentResult, speedup

__all__ = ["run_feature_quant", "run_indices_tables", "run"]

BASE_ROWS = 65_536
BASE_BATCH = 32


def _measure(config: DlrmConfig, seed: int, batch: int, n_batches: int) -> tuple[float, float]:
    rng = np.random.default_rng(seed)
    batches = [DlrmModel(config, seed=seed).sample_batch(rng, batch)
               for _ in range(n_batches)]
    base = ModelRunner(
        DlrmModel(config, seed=seed),
        RunnerConfig(kind=BackendKind.SSD, pipelined=False),
    ).run_batches(batches)
    ndp = ModelRunner(
        DlrmModel(config, seed=seed),
        RunnerConfig(kind=BackendKind.NDP, pipelined=False),
    ).run_batches(batches)
    if not np.allclose(base.outputs[-1], ndp.outputs[-1], rtol=1e-4, atol=1e-5):
        raise AssertionError("fig11: NDP outputs diverge from baseline")
    return base.steady_latency, ndp.steady_latency


def _rm3_like(name: str, dim: int, lookups: int, tables: int) -> DlrmConfig:
    return DlrmConfig(
        name=name, dense_in=64, bottom_mlp=(128,), top_mlp=(64,),
        num_tables=tables, table_rows=BASE_ROWS, dim=dim, lookups=lookups,
    )


def run_feature_quant(fast: bool = True, seed: int = 0) -> ExperimentResult:
    dims = (16, 64) if fast else (16, 32, 64, 128)
    dtypes = (EmbDtype.FP32, EmbDtype.INT8) if fast else (
        EmbDtype.FP32, EmbDtype.FP16, EmbDtype.INT8
    )
    n_batches = 2
    rows = []
    for dim in dims:
        for dtype in dtypes:
            config = _rm3_like("fig11a", dim=dim, lookups=20, tables=4)
            quant = QuantSpec(dtype=dtype)
            base_s, ndp_s = _measure_quant(config, quant, seed, BASE_BATCH, n_batches)
            rows.append(
                {
                    "dim": dim,
                    "dtype": dtype.value,
                    "row_bytes": quant.row_bytes(dim),
                    "base_ms": base_s * 1e3,
                    "ndp_ms": ndp_s * 1e3,
                    "ndp_speedup": speedup(base_s, ndp_s),
                }
            )
    return ExperimentResult(
        experiment="fig11a",
        title="NDP speedup vs feature size and quantization (RM3-like model)",
        rows=rows,
    )


class _QuantDlrm(DlrmModel):
    """DLRM variant whose tables use a non-default element type."""

    def __init__(self, config: DlrmConfig, quant: QuantSpec, seed: int = 0):
        self._quant = quant
        super().__init__(config, seed=seed)
        # Rebuild tables with the quantized spec.
        from ..embedding.table import EmbeddingTable

        for i, feature in enumerate(list(self.features)):
            spec = TableSpec(
                name=feature.spec.name,
                rows=feature.spec.rows,
                dim=feature.spec.dim,
                quant=quant,
                layout=feature.spec.layout,
            )
            object.__setattr__(feature, "spec", spec)
            self.tables[feature.name] = EmbeddingTable(spec, seed=seed + i * 1009 + 1)


def _measure_quant(
    config: DlrmConfig, quant: QuantSpec, seed: int, batch: int, n_batches: int
) -> tuple[float, float]:
    rng = np.random.default_rng(seed)
    batches = [_QuantDlrm(config, quant, seed=seed).sample_batch(rng, batch)
               for _ in range(n_batches)]
    base = ModelRunner(
        _QuantDlrm(config, quant, seed=seed),
        RunnerConfig(kind=BackendKind.SSD, pipelined=False),
    ).run_batches(batches)
    ndp = ModelRunner(
        _QuantDlrm(config, quant, seed=seed),
        RunnerConfig(kind=BackendKind.NDP, pipelined=False),
    ).run_batches(batches)
    if not np.allclose(base.outputs[-1], ndp.outputs[-1], rtol=1e-3, atol=1e-4):
        raise AssertionError("fig11a: NDP outputs diverge from baseline")
    return base.steady_latency, ndp.steady_latency


def run_indices_tables(fast: bool = True, seed: int = 0) -> ExperimentResult:
    indices_sweep = (20, 120) if fast else (20, 40, 80, 120)
    tables_sweep = (2, 16) if fast else (2, 4, 8, 16, 32)
    n_batches = 2
    rows = []
    for lookups in indices_sweep:
        config = _rm3_like("fig11b_idx", dim=32, lookups=lookups, tables=4)
        base_s, ndp_s = _measure(config, seed, BASE_BATCH, n_batches)
        rows.append(
            {
                "sweep": "indices",
                "value": lookups,
                "base_ms": base_s * 1e3,
                "ndp_ms": ndp_s * 1e3,
                "ndp_speedup": speedup(base_s, ndp_s),
            }
        )
    for tables in tables_sweep:
        config = _rm3_like("fig11b_tab", dim=32, lookups=20, tables=tables)
        base_s, ndp_s = _measure(config, seed, BASE_BATCH, n_batches)
        rows.append(
            {
                "sweep": "tables",
                "value": tables,
                "base_ms": base_s * 1e3,
                "ndp_ms": ndp_s * 1e3,
                "ndp_speedup": speedup(base_s, ndp_s),
            }
        )
    return ExperimentResult(
        experiment="fig11b",
        title="NDP speedup vs indices per lookup and table count",
        rows=rows,
    )


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    a = run_feature_quant(fast=fast, seed=seed)
    b = run_indices_tables(fast=fast, seed=seed)
    rows = [dict(panel="a", **r) for r in a.rows] + [
        dict(panel="b", **r) for r in b.rows
    ]
    return ExperimentResult(
        experiment="fig11",
        title="Model-parameter sensitivity (a: feature/quant, b: indices/tables)",
        rows=rows,
        notes=a.notes + b.notes,
    )


def main() -> None:  # pragma: no cover
    print(run(fast=True).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
