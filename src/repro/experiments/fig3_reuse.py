"""Figure 3: embedding-table reuse follows a power law.

The paper's data is proprietary; we regenerate the curve's shape from a
Zipf trace (DESIGN.md documents the substitution).  For each page
granularity (256B / 1KB / 4KB) we report how many of the hottest pages
cover 30% / 50% / 80% of all accesses — the claim being that a few
hundred pages capture ~30% of reuse and a few thousand extend past 50%.
"""

from __future__ import annotations

import numpy as np

from ..traces.analysis import rows_to_pages
from ..traces.powerlaw import ZipfTraceGenerator
from .common import ExperimentResult

__all__ = ["run"]

PAGE_SIZES = (256, 1024, 4096)


def hottest_pages_for_share(page_trace: np.ndarray, share: float) -> int:
    """Number of hottest pages covering ``share`` of accesses."""
    _ids, counts = np.unique(page_trace, return_counts=True)
    counts = np.sort(counts)[::-1]
    cum = np.cumsum(counts)
    target = share * cum[-1]
    return int(np.searchsorted(cum, target) + 1)


def run(
    fast: bool = True,
    seed: int = 0,
    table_rows: int = 1 << 20,
    row_bytes: int = 64,
    alpha: float = 1.05,
) -> ExperimentResult:
    n_accesses = 100_000 if fast else 400_000
    gen = ZipfTraceGenerator(table_rows, alpha=alpha, seed=seed)
    trace = gen.generate(n_accesses)
    rows = []
    for page_bytes in PAGE_SIZES:
        pages = rows_to_pages(trace, row_bytes, page_bytes)
        distinct = int(np.unique(pages).size)
        rows.append(
            {
                "page_size": page_bytes,
                "accesses": n_accesses,
                "distinct_pages": distinct,
                "pages_for_30pct": hottest_pages_for_share(pages, 0.30),
                "pages_for_50pct": hottest_pages_for_share(pages, 0.50),
                "pages_for_80pct": hottest_pages_for_share(pages, 0.80),
            }
        )
    return ExperimentResult(
        experiment="fig3",
        title="Reuse distribution vs page granularity (power-law accesses)",
        rows=rows,
        notes=[
            "paper's Figs 3-4 use proprietary traces; shape regenerated from "
            f"a Zipf(alpha={alpha}) synthetic trace"
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(fast=True).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
