"""Device calibration: measure the simulator against the paper's numbers.

Section 5 of the paper fixes the prototype's envelope:

* ~10K IOPS per channel at 16KB pages, 8 channels,
* maximum sequential read throughput "just under 1.4GB/s",
* whole-stack random block reads around 10K IOPS (Section 3.2),
* single page access latencies in the 10s-100s of microseconds.

This experiment measures each on the assembled device (not from the
config constants), so any regression in the queueing model shows up as a
calibration drift.  The test suite asserts the target ranges.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..driver.unvme import DriverConfig, UnvmeDriver
from ..host.system import System
from ..ssd.presets import cosmos_plus_config
from .common import ExperimentResult

__all__ = ["run", "measure_sequential_bandwidth", "measure_random_iops",
           "measure_page_read_latency"]


def _fresh_system() -> System:
    return System(cosmos_plus_config(min_capacity_pages=1 << 15))


def measure_sequential_bandwidth(n_bytes: int = 64 << 20) -> float:
    """Stream large coalesced reads; returns bytes/second."""
    system = _fresh_system()
    driver = system.driver
    ftl = system.device.ftl

    # Preload a region so reads hit flash, not the unmapped fast path.
    class _Region:
        def __init__(self, pages):
            self.page_count = pages

        def page_content(self, offset):
            return np.zeros(ftl.page_bytes, dtype=np.uint8)

    n_pages = n_bytes // ftl.page_bytes
    ftl.preload_region(0, _Region(n_pages))
    lbas_per_cmd = 32  # 128KB transfers
    total_lbas = n_pages * ftl.lbas_per_page
    done = {"n": 0}
    t0 = system.sim.now
    for slba in range(0, total_lbas, lbas_per_cmd):
        driver.read(slba, min(lbas_per_cmd, total_lbas - slba),
                    lambda c: done.__setitem__("n", done["n"] + 1))
    n_cmds = -(-total_lbas // lbas_per_cmd)
    system.sim.run_until(lambda: done["n"] == n_cmds)
    return n_bytes / (system.sim.now - t0)


def measure_random_iops(n_cmds: int = 4000, seed: int = 0) -> float:
    """Whole-stack random single-LBA reads at full queue depth."""
    system = _fresh_system()
    driver = system.driver
    ftl = system.device.ftl

    class _Region:
        def __init__(self, pages):
            self.page_count = pages

        def page_content(self, offset):
            return np.zeros(ftl.page_bytes, dtype=np.uint8)

    n_pages = 1 << 14
    ftl.preload_region(0, _Region(n_pages))
    rng = np.random.default_rng(seed)
    lbas = rng.integers(0, n_pages * ftl.lbas_per_page, size=n_cmds)
    done = {"n": 0}
    t0 = system.sim.now
    for lba in lbas:
        driver.read(int(lba), 1, lambda c: done.__setitem__("n", done["n"] + 1))
    system.sim.run_until(lambda: done["n"] == n_cmds)
    return n_cmds / (system.sim.now - t0)


def measure_page_read_latency() -> float:
    """Unloaded single flash page read latency (seconds)."""
    system = _fresh_system()
    flash = system.device.flash
    done: List[float] = []
    flash.read(0, lambda c: done.append(system.sim.now))
    system.sim.run_until(lambda: bool(done))
    return done[0]


def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    seq_bytes = (16 << 20) if fast else (128 << 20)
    n_cmds = 2000 if fast else 10000
    seq_bw = measure_sequential_bandwidth(seq_bytes)
    iops = measure_random_iops(n_cmds, seed)
    latency = measure_page_read_latency()
    rows = [
        {
            "metric": "sequential_read_GB_s",
            "measured": seq_bw / 1e9,
            "paper_target": "just under 1.4",
        },
        {
            "metric": "random_read_iops",
            "measured": iops,
            "paper_target": "~10K (Sec 3.2)",
        },
        {
            "metric": "page_read_latency_us",
            "measured": latency * 1e6,
            "paper_target": "10s-100s of us",
        },
    ]
    return ExperimentResult(
        "calibration",
        "Device envelope vs the paper's prototype numbers",
        rows,
    )


def main() -> None:  # pragma: no cover
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
