"""Figure 10: exploiting locality — caching strategies on top of NDP.

Three systems over locality-parameterized traces (K = 0/1/2 -> 13%/54%/72%
unique accesses):

* baseline: conventional SSD + 16-way LRU host cache (2K entries/table)
* RecSSD + SSD-side direct-mapped embedding cache (panels a-c)
* RecSSD + static host partition (2K entries/table, from input profiling)
  on top of the SSD cache (panels d-f)

Expected shape: the baseline wins at high locality (K=0, its LRU reaches
~84% hits); RecSSD wins at low locality (K=2) where most pages must come
off flash; static partitioning recovers host-DRAM benefits for RecSSD,
lifting it to ~2x at low locality.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.engine import NdpEngineConfig
from ..models import BackendKind, ModelRunner, RunnerConfig, build_model
from .common import ExperimentResult, locality_samplers, speedup

__all__ = ["run"]

HOST_CACHE_ENTRIES = 2048
PARTITION_ENTRIES = 2048
EMBCACHE_SLOTS = 65536
UNIVERSE = 8192


def run(
    fast: bool = True,
    seed: int = 0,
    models: Sequence[str] = ("rm1", "rm2", "rm3"),
    k_values: Sequence[int] = (0, 1, 2),
    batch_sizes: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    if fast:
        models = ("rm1",)
        k_values = (0, 2)
        batch_sizes = batch_sizes or (8, 32)
        n_batches, warmup = 4, 1
        profile_batches = 4
    else:
        batch_sizes = batch_sizes or (1, 4, 16, 32)
        n_batches, warmup = 6, 2
        profile_batches = 8
    rng = np.random.default_rng(seed)
    rows: List[Dict[str, object]] = []
    for name in models:
        for k in k_values:
            for batch in batch_sizes:
                template = build_model(name, seed=seed)
                samplers, generators = locality_samplers(
                    template, k, seed=seed + 7 * k, universe=UNIVERSE
                )
                # Profiling pass: the static partition is built from input
                # profiling of earlier traffic from the same distribution.
                profiles: Dict[str, List[np.ndarray]] = {
                    fname: [
                        gen.generate(
                            profile_batches * batch * _lookups(template, fname)
                        )
                    ]
                    for fname, gen in generators.items()
                }
                batches = [
                    template.sample_batch(rng, batch, samplers=samplers)
                    for _ in range(n_batches)
                ]

                base_runner = ModelRunner(
                    build_model(name, seed=seed),
                    RunnerConfig(
                        kind=BackendKind.SSD,
                        host_cache_entries=HOST_CACHE_ENTRIES,
                        warmup_batches=warmup,
                    ),
                )
                base = base_runner.run_batches(batches)

                cache_runner = ModelRunner(
                    build_model(name, seed=seed),
                    RunnerConfig(kind=BackendKind.NDP, warmup_batches=warmup),
                    ndp_engine_config=NdpEngineConfig(embcache_slots=EMBCACHE_SLOTS),
                )
                ndp_cache = cache_runner.run_batches(batches)

                part_runner = ModelRunner(
                    build_model(name, seed=seed),
                    RunnerConfig(
                        kind=BackendKind.NDP,
                        partition_entries=PARTITION_ENTRIES,
                        warmup_batches=warmup,
                    ),
                    partition_profiles=profiles,
                    ndp_engine_config=NdpEngineConfig(embcache_slots=EMBCACHE_SLOTS),
                )
                ndp_part = part_runner.run_batches(batches)

                ref = base.outputs[-1]
                for candidate, label in ((ndp_cache, "cache"), (ndp_part, "part")):
                    if not np.allclose(candidate.outputs[-1], ref, rtol=1e-4, atol=1e-5):
                        raise AssertionError(f"fig10: {name} {label} outputs diverge")

                rows.append(
                    {
                        "model": name,
                        "K": k,
                        "batch": batch,
                        "base_ms": base.steady_latency * 1e3,
                        "ndp_cache_ms": ndp_cache.steady_latency * 1e3,
                        "speedup_cache": speedup(
                            base.steady_latency, ndp_cache.steady_latency
                        ),
                        "ndp_part_ms": ndp_part.steady_latency * 1e3,
                        "speedup_part": speedup(
                            base.steady_latency, ndp_part.steady_latency
                        ),
                        "lru_hit": base_runner.host_cache_hit_rate(),
                        "ssd_cache_hit": cache_runner.ssd_emb_cache_hit_rate(),
                        "part_hit": part_runner.partition_hit_rate(),
                    }
                )
    return ExperimentResult(
        experiment="fig10",
        title="RecSSD vs baseline with caching, across locality K and batch size",
        rows=rows,
        notes=[
            f"host LRU/partition = {HOST_CACHE_ENTRIES} entries/table, "
            f"SSD cache = {EMBCACHE_SLOTS} direct-mapped slots, "
            f"active-ID universe = {UNIVERSE}/table"
        ],
    )


def _lookups(model, feature_name: str) -> int:
    for f in model.features:
        if f.name == feature_name:
            return f.lookups
    raise KeyError(feature_name)


def main() -> None:  # pragma: no cover
    print(run(fast=True).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
