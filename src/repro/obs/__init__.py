"""``repro.obs`` — observability: tracing, metrics, attribution.

Three layers, all passive with respect to the simulated timeline:

* :mod:`repro.obs.tracer` — sim-time spans with parent/child causality
  (``Tracer().install(sim)``; every instrumentation site is a no-op
  while ``sim.tracer is None``).
* :mod:`repro.obs.metrics` — named counters/gauges/histograms plus the
  opt-in :class:`PeriodicSampler` time series.
* :mod:`repro.obs.analysis` / :mod:`repro.obs.export` — request-tree
  reconstruction, exact exclusive-time latency attribution
  (:func:`attribute_p99`, :func:`critical_path`) and Chrome/Perfetto +
  CSV export (``tools/trace_export.py``).

:mod:`repro.obs.resettable` is the shared stats-reset registry every
counter-bearing class registers into (see ``docs/OBSERVABILITY.md``).
"""

from .analysis import (
    SpanNode,
    attribute_p99,
    build_forest,
    build_request_trees,
    critical_path,
    exclusive_times,
)
from .export import (
    to_chrome_trace,
    to_csv_rows,
    validate_chrome_trace,
    write_chrome_trace,
    write_csv,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PeriodicSampler,
    serving_probe,
)
from .resettable import (
    clear_registry,
    live_resettables,
    register_resettable,
    reset_all,
)
from .tracer import NULL_TRACER, Span, Tracer

__all__ = [
    "Span",
    "Tracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PeriodicSampler",
    "serving_probe",
    "register_resettable",
    "reset_all",
    "live_resettables",
    "clear_registry",
    "SpanNode",
    "build_forest",
    "build_request_trees",
    "exclusive_times",
    "critical_path",
    "attribute_p99",
    "to_chrome_trace",
    "write_chrome_trace",
    "to_csv_rows",
    "write_csv",
    "validate_chrome_trace",
]
