"""Sim-time request tracing: spans, instant events, and causality.

The :class:`Tracer` is a passive observer of the simulated timeline.  It
is installed on a :class:`~repro.sim.kernel.Simulator` (``tracer.install(sim)``
sets ``sim.tracer``), and every instrumentation site in the stack guards
itself with ``tracer = sim.tracer`` / ``if tracer is not None`` — when no
tracer is installed the entire subsystem costs one attribute load per
site.  A tracer NEVER schedules simulator events and NEVER draws random
numbers: with tracing on or off, the event timeline and every simulated
number are bit-identical (pinned by ``tests/obs/test_bit_identity.py``).

Spans
-----
A :class:`Span` is a named ``[t0, t1]`` interval in *simulated* seconds
with an optional parent and free-form attributes::

    span = tracer.begin("nvme.cmd", opcode="READ", cid=7)   # t0 = sim.now
    ...                                                     # async work
    tracer.end(span)                                        # t1 = sim.now

Because the simulator is a single-threaded callback loop, synchronous
call chains can use the context-manager form, which also maintains the
*current-span stack* used for implicit parenting::

    with tracer.span("batch", model="dlrm", requests=ids):
        worker.stage.start(...)     # sites below see this span as parent

Async continuations (an NVMe completion, a batch-done callback) carry
their :class:`Span` handle through the closure and call :meth:`end`
explicitly; :meth:`push` / :meth:`pop` bracket a synchronous section
under an async span without ending it.

Spans whose interval is only known after the fact (e.g. the per-request
tree synthesized from request timestamps at completion) are recorded
retrospectively with :meth:`add`.

Instant events (:meth:`event`) mark zero-duration occurrences — routing
decisions, drops, fault injections — and parent under the current stack
top like spans do.

The trace is just ``tracer.spans`` + ``tracer.events`` (lists, in
creation order).  ``repro.obs.analysis`` builds per-request trees and
latency attributions from it; ``repro.obs.export`` serializes it.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer", "NULL_TRACER"]


class Span:
    """A named sim-time interval with parent causality and attributes."""

    __slots__ = ("sid", "name", "t0", "t1", "parent_sid", "attrs")

    def __init__(
        self,
        sid: int,
        name: str,
        t0: float,
        parent_sid: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ):
        self.sid = sid
        self.name = name
        self.t0 = t0
        self.t1: Optional[float] = None
        self.parent_sid = parent_sid
        self.attrs: Dict[str, Any] = attrs if attrs is not None else {}

    @property
    def done(self) -> bool:
        return self.t1 is not None

    @property
    def duration(self) -> float:
        if self.t1 is None:
            raise ValueError(f"span {self.name!r} (sid={self.sid}) not ended")
        return self.t1 - self.t0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sid": self.sid,
            "name": self.name,
            "t0": self.t0,
            "t1": self.t1,
            "parent_sid": self.parent_sid,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:
        end = f"{self.t1:.9f}" if self.t1 is not None else "..."
        return f"Span({self.name!r}, sid={self.sid}, [{self.t0:.9f}, {end}])"


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self._tracer.push(self.span)
        return self.span

    def __exit__(self, *exc) -> None:
        self._tracer.pop()
        self._tracer.end(self.span)


class Tracer:
    """Collects spans and instant events against a simulator's clock.

    Also owns an optional :class:`~repro.obs.metrics.MetricsRegistry`
    (``tracer.metrics``) so instrumentation sites can bump named counters
    alongside spans without a second plumbing path; it is created lazily
    on first access and never affects the timeline.
    """

    def __init__(self) -> None:
        self.sim = None
        self.spans: List[Span] = []
        self.events: List[Span] = []
        self._stack: List[Span] = []
        self._next_sid = 1
        self._metrics = None

    # ------------------------------------------------------------------
    # installation
    def install(self, sim) -> "Tracer":
        """Attach to ``sim`` so instrumentation sites find this tracer."""
        if self.sim is not None and self.sim is not sim:
            raise RuntimeError("tracer already installed on another simulator")
        self.sim = sim
        sim.tracer = self
        return self

    def uninstall(self) -> None:
        if self.sim is not None:
            self.sim.tracer = None
            self.sim = None

    @property
    def now(self) -> float:
        return self.sim.now if self.sim is not None else 0.0

    @property
    def metrics(self):
        if self._metrics is None:
            from .metrics import MetricsRegistry

            self._metrics = MetricsRegistry()
        return self._metrics

    # ------------------------------------------------------------------
    # span lifecycle
    def _new_sid(self) -> int:
        sid = self._next_sid
        self._next_sid += 1
        return sid

    def begin(
        self, name: str, parent: Optional[Span] = None, **attrs: Any
    ) -> Span:
        """Open a span at ``sim.now``.  ``parent=None`` uses the current
        stack top (or no parent if the stack is empty)."""
        if parent is None and self._stack:
            parent = self._stack[-1]
        span = Span(
            self._new_sid(),
            name,
            self.now,
            parent.sid if parent is not None else None,
            attrs if attrs else None,
        )
        self.spans.append(span)
        return span

    def end(self, span: Span) -> Span:
        """Close ``span`` at ``sim.now``."""
        if span.t1 is not None:
            raise ValueError(f"span {span.name!r} (sid={span.sid}) ended twice")
        span.t1 = self.now
        return span

    def add(
        self,
        name: str,
        t0: float,
        t1: float,
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Record a retrospective, already-complete span ``[t0, t1]``."""
        if t1 < t0:
            raise ValueError(f"span {name!r} ends before it starts: {t1} < {t0}")
        span = Span(
            self._new_sid(),
            name,
            t0,
            parent.sid if parent is not None else None,
            attrs if attrs else None,
        )
        span.t1 = t1
        self.spans.append(span)
        return span

    def event(self, name: str, **attrs: Any) -> Span:
        """Record an instant (zero-duration) event at ``sim.now``."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            self._new_sid(),
            name,
            self.now,
            parent.sid if parent is not None else None,
            attrs if attrs else None,
        )
        span.t1 = span.t0
        self.events.append(span)
        return span

    # ------------------------------------------------------------------
    # current-span stack (implicit parenting for synchronous sections)
    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Context manager: begin + push on enter, pop + end on exit."""
        return _SpanContext(self, self.begin(name, **attrs))

    def push(self, span: Span) -> None:
        """Make ``span`` the implicit parent for sites called below."""
        self._stack.append(span)

    def pop(self) -> Span:
        return self._stack.pop()

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------
    # inspection
    def find(self, name: str) -> List[Span]:
        """All spans (not events) with ``name``, in creation order."""
        return [s for s in self.spans if s.name == name]

    def iter_all(self) -> Iterator[Span]:
        """Spans then events, each in creation order."""
        yield from self.spans
        yield from self.events

    def reset(self) -> None:
        """Drop all recorded spans/events (the stack must be empty)."""
        if self._stack:
            raise RuntimeError("cannot reset a tracer with open stack spans")
        self.spans.clear()
        self.events.clear()
        if self._metrics is not None:
            self._metrics.reset()

    def __len__(self) -> int:
        return len(self.spans) + len(self.events)

    def __repr__(self) -> str:
        return (
            f"Tracer(spans={len(self.spans)}, events={len(self.events)}, "
            f"installed={self.sim is not None})"
        )


#: Sentinel no-op default: ``sim.tracer`` is ``None`` (checked with
#: ``is not None`` at every site), but code that wants an
#: always-callable tracer object can use ``NULL_TRACER`` — it swallows
#: everything and records nothing.
class _NullTracer(Tracer):
    def begin(self, name, parent=None, **attrs):  # pragma: no cover - trivial
        return Span(0, name, 0.0)

    def end(self, span):
        span.t1 = span.t0
        return span

    def add(self, name, t0, t1, parent=None, **attrs):
        span = Span(0, name, t0)
        span.t1 = t1
        return span

    def event(self, name, **attrs):
        span = Span(0, name, 0.0)
        span.t1 = 0.0
        return span

    def install(self, sim):
        raise RuntimeError("NULL_TRACER cannot be installed")


NULL_TRACER = _NullTracer()
