"""One registry for every stats surface that must clear between windows.

Benchmarks follow a warm-up / ``reset_stats()`` / measure pattern, and
before this module each counter-bearing class (``ServingStats``,
``ClusterStats``, the embedding/page caches, the FTL and its GC/wear
gauges, metrics registries) had to be found and reset individually —
``tests/hotpath/test_stats_reset.py`` introspected each class ad hoc,
and a new gauge added to any of them silently escaped the audit.

Instead, every such object now calls :func:`register_resettable` from
its constructor.  The registry is a :class:`weakref.WeakSet`, so
registration never extends an object's lifetime and short-lived
benchmark fixtures vanish from it with their last strong reference.

:func:`reset_all` clears every live registered object (``reset_stats()``
preferred, ``reset()`` as the fallback the older classes expose), and
the audit test reduces to: build a stack, dirty it, ``reset_all()``,
assert zeros — one surface, however many classes register.
"""

from __future__ import annotations

import weakref
from typing import Iterator, List

__all__ = [
    "register_resettable",
    "reset_all",
    "live_resettables",
    "clear_registry",
]

_REGISTRY: "weakref.WeakSet" = weakref.WeakSet()


def register_resettable(obj) -> None:
    """Add ``obj`` (weakly) to the global reset registry.

    ``obj`` must expose ``reset_stats()`` or ``reset()``; registering
    anything else raises immediately, so a class cannot register a
    surface the auditor can't clear.
    """
    reset = getattr(obj, "reset_stats", None) or getattr(obj, "reset", None)
    if not callable(reset):
        raise TypeError(
            f"{type(obj).__name__} has neither reset_stats() nor reset()"
        )
    _REGISTRY.add(obj)


def live_resettables() -> List[object]:
    """A strong-referenced snapshot of currently-live registered objects."""
    return list(_REGISTRY)


def reset_all() -> int:
    """Reset every live registered object; returns how many were reset."""
    objs = live_resettables()
    for obj in objs:
        reset = getattr(obj, "reset_stats", None)
        if not callable(reset):
            reset = obj.reset
        reset()
    return len(objs)


def clear_registry() -> None:
    """Forget all registrations (test isolation helper)."""
    _REGISTRY.clear()


def _registered_count() -> int:
    return len(_REGISTRY)


def _iter_registered() -> Iterator[object]:  # pragma: no cover - debug aid
    yield from _REGISTRY
