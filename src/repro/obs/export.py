"""Trace exporters: Chrome/Perfetto ``trace_event`` JSON and CSV.

The Chrome trace format (loadable at ``ui.perfetto.dev`` or
``chrome://tracing``) is a dict with a ``traceEvents`` list; spans
become complete events (``"ph": "X"``) with microsecond timestamps, and
tracer instant events become ``"ph": "i"``.  Sim time starts at 0, so
timestamps are exported as-is (µs = s * 1e6).

Track assignment: every span lands on the thread id of its *root
ancestor*, so each request tree (and each batch/device subtree) renders
as one self-contained nested track — Chrome's viewer nests same-tid
events by time containment, which matches our parent/child intervals by
construction.

:func:`validate_chrome_trace` is the structural schema check behind
``tools/trace_export.py --check`` and the golden trace test: every
event must carry the required keys, microsecond fields must be finite
non-negative numbers, and complete events must have ``dur >= 0``.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

from .tracer import Span, Tracer

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "to_csv_rows",
    "write_csv",
    "validate_chrome_trace",
]

_REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")


def _spans_events(
    trace: Union[Tracer, Iterable[Span]],
) -> tuple[List[Span], List[Span]]:
    if isinstance(trace, Tracer):
        return list(trace.spans), list(trace.events)
    spans = list(trace)
    return [s for s in spans if s.t1 != s.t0], [s for s in spans if s.t1 == s.t0]


def _root_sids(spans: List[Span], events: List[Span]) -> Dict[int, int]:
    """Map every sid to the sid of its root ancestor (itself if rootless)."""
    parent = {s.sid: s.parent_sid for s in spans}
    parent.update({e.sid: e.parent_sid for e in events})
    roots: Dict[int, int] = {}

    def resolve(sid: int) -> int:
        chain: List[int] = []
        cur = sid
        while cur not in roots:
            chain.append(cur)
            up = parent.get(cur)
            if up is None or up not in parent:
                roots[cur] = cur
                break
            cur = up
        root = roots[cur]
        for s in chain:
            roots[s] = root
        return root

    for sid in parent:
        resolve(sid)
    return roots


def _category(name: str) -> str:
    return name.split(".", 1)[0]


def to_chrome_trace(trace: Union[Tracer, Iterable[Span]]) -> Dict[str, Any]:
    """Serialize to a Chrome ``trace_event`` dict (times in µs)."""
    spans, events = _spans_events(trace)
    roots = _root_sids(spans, events)
    trace_events: List[Dict[str, Any]] = []
    for span in spans:
        if span.t1 is None:
            continue
        trace_events.append(
            {
                "name": span.name,
                "cat": _category(span.name),
                "ph": "X",
                "ts": span.t0 * 1e6,
                "dur": (span.t1 - span.t0) * 1e6,
                "pid": 1,
                "tid": roots.get(span.sid, span.sid),
                "args": {"sid": span.sid, **span.attrs},
            }
        )
    for event in events:
        trace_events.append(
            {
                "name": event.name,
                "cat": _category(event.name),
                "ph": "i",
                "s": "t",
                "ts": event.t0 * 1e6,
                "pid": 1,
                "tid": roots.get(event.sid, event.sid),
                "args": {"sid": event.sid, **event.attrs},
            }
        )
    trace_events.sort(key=lambda e: (e["ts"], e["args"]["sid"]))
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    trace: Union[Tracer, Iterable[Span]], path: Union[str, Path]
) -> Path:
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(trace), indent=1) + "\n")
    return path


CSV_COLUMNS = ("sid", "name", "t0_s", "t1_s", "duration_s", "parent_sid", "attrs")


def to_csv_rows(trace: Union[Tracer, Iterable[Span]]) -> List[Dict[str, Any]]:
    """One flat row per span/event, attributes JSON-encoded."""
    spans, events = _spans_events(trace)
    rows = []
    for span in spans + events:
        rows.append(
            {
                "sid": span.sid,
                "name": span.name,
                "t0_s": span.t0,
                "t1_s": span.t1,
                "duration_s": (span.t1 - span.t0) if span.t1 is not None else "",
                "parent_sid": span.parent_sid if span.parent_sid is not None else "",
                "attrs": json.dumps(span.attrs, sort_keys=True),
            }
        )
    rows.sort(key=lambda r: (r["t0_s"], r["sid"]))
    return rows


def write_csv(
    trace: Union[Tracer, Iterable[Span]], path: Union[str, Path]
) -> Path:
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=CSV_COLUMNS)
        writer.writeheader()
        writer.writerows(to_csv_rows(trace))
    return path


def validate_chrome_trace(obj: Any) -> List[str]:
    """Structural schema check; returns a list of problems (empty = ok)."""
    problems: List[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be a dict, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not a dict")
            continue
        for key in _REQUIRED_EVENT_KEYS:
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        ph = event.get("ph")
        if ph not in ("X", "i", "B", "E", "M"):
            problems.append(f"{where}: unknown phase {ph!r}")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0 or ts != ts:
            problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: complete event with bad dur {dur!r}")
        if ph == "i" and event.get("s") not in ("g", "p", "t"):
            problems.append(f"{where}: instant event with bad scope")
    return problems
