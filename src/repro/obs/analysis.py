"""Trace analysis: span forests, critical paths, and p99 attribution.

Works on the plain span lists a :class:`~repro.obs.tracer.Tracer`
records.  The central primitive is an *exact exclusive-time
decomposition*: :func:`exclusive_times` partitions a span's interval
among its children (earlier-starting child wins an overlap, leftover
stays with the parent, recursion descends into each child's assigned
sub-interval), so the per-stage times of one request **sum to its
end-to-end latency** up to float addition error — the property
``attribute_p99`` asserts and ``tests/obs`` pins to 1e-9 s.

Request trees
-------------
The serving layer synthesizes one ``request`` root per completed
request (children ``queue`` / ``emb`` / ``dense_wait`` / ``dense``
tiling ``[t_arrival, t_done]``), and the batch scheduler records one
``batch`` span per coalesced dispatch whose subtree holds the device
tier (``sls_op`` → ``nvme.cmd`` → ``ftl.read`` / ``ftl.write``).  A
batch fans in to many requests, so the batch span cannot be a tree
child of any single request; instead each request's ``emb`` child
carries a ``batch_sid`` attribute and :func:`build_request_trees`
*grafts* the batch subtree under ``emb`` (clipped to the request's
window during decomposition).  The same device span legitimately
attributes into every coalesced request — each of them really did wait
on that device work.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from .tracer import Span, Tracer

__all__ = [
    "SpanNode",
    "build_forest",
    "build_request_trees",
    "exclusive_times",
    "critical_path",
    "attribute_p99",
]


class SpanNode:
    """A span plus its (t0-ordered) children in the trace forest."""

    __slots__ = ("span", "children")

    def __init__(self, span: Span):
        self.span = span
        self.children: List["SpanNode"] = []

    @property
    def name(self) -> str:
        return self.span.name

    def walk(self) -> Iterable["SpanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return f"SpanNode({self.span!r}, children={len(self.children)})"


def _spans_of(trace: Union[Tracer, Iterable[Span]]) -> List[Span]:
    if isinstance(trace, Tracer):
        return list(trace.spans)
    return list(trace)


def build_forest(
    trace: Union[Tracer, Iterable[Span]],
) -> Tuple[List[SpanNode], Dict[int, SpanNode]]:
    """Index spans into ``(roots, nodes_by_sid)``.

    Only *complete* spans (``t1`` set) participate; children are ordered
    by ``(t0, sid)``.  A span whose parent is missing from the trace
    becomes a root.
    """
    nodes: Dict[int, SpanNode] = {}
    for span in _spans_of(trace):
        if span.t1 is not None:
            nodes[span.sid] = SpanNode(span)
    roots: List[SpanNode] = []
    for node in nodes.values():
        parent = nodes.get(node.span.parent_sid)
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: (n.span.t0, n.span.sid))
    roots.sort(key=lambda n: (n.span.t0, n.span.sid))
    return roots, nodes


def build_request_trees(
    trace: Union[Tracer, Iterable[Span]],
) -> List[SpanNode]:
    """Per-request trees with the coalesced batch subtree grafted in.

    Returns the ``request`` roots, ordered by start time.  Where a
    request's ``emb`` child names a ``batch_sid``, the batch's
    :class:`SpanNode` (shared, read-only) is appended to the ``emb``
    child, connecting the request to the device tier it waited on.
    """
    roots, nodes = build_forest(trace)
    trees: List[SpanNode] = []
    for root in roots:
        if root.name != "request":
            continue
        for child in root.children:
            if child.name != "emb":
                continue
            batch_sid = child.span.attrs.get("batch_sid")
            batch_node = nodes.get(batch_sid) if batch_sid is not None else None
            if batch_node is not None and batch_node not in child.children:
                child.children.append(batch_node)
                child.children.sort(key=lambda n: (n.span.t0, n.span.sid))
        trees.append(root)
    return trees


def _attribute(
    node: SpanNode, a: float, b: float, out: Dict[str, float]
) -> None:
    """Attribute the interval ``[a, b]`` (within ``node``'s span) among
    ``node``'s children; leftover accrues to ``node.name``.

    The pieces form an exact partition of ``[a, b]``: every point lands
    in exactly one leaf bucket, so the bucket sums reconstruct ``b - a``
    up to float addition error.
    """
    cursor = a
    for child in node.children:
        lo = child.span.t0
        hi = child.span.t1
        if hi <= cursor or lo >= b:
            continue
        if lo < cursor:
            lo = cursor
        if hi > b:
            hi = b
        if lo > cursor:
            out[node.name] = out.get(node.name, 0.0) + (lo - cursor)
        _attribute(child, lo, hi, out)
        cursor = hi
        if cursor >= b:
            break
    if cursor < b:
        out[node.name] = out.get(node.name, 0.0) + (b - cursor)


def exclusive_times(tree: SpanNode) -> Dict[str, float]:
    """Per-stage *exclusive* seconds over ``tree``'s whole interval.

    Keys are span names; values sum to ``tree.span.duration`` within
    float epsilon (the partition property above).
    """
    out: Dict[str, float] = {}
    if tree.span.t1 > tree.span.t0:
        _attribute(tree, tree.span.t0, tree.span.t1, out)
    return out


def critical_path(tree: SpanNode) -> List[Dict[str, float]]:
    """The last-finisher chain from the root down.

    At each level, descend into the child that finishes last (the one
    gating the parent's completion); report each hop's name, interval
    and exclusive time within its own subtree.  For a request tree this
    reads as "the request ended when *dense* ended, which ended when
    ...".
    """
    path: List[Dict[str, float]] = []
    node: Optional[SpanNode] = tree
    while node is not None:
        exclusive = exclusive_times(node)
        path.append(
            {
                "name": node.name,
                "t0": node.span.t0,
                "t1": node.span.t1,
                "duration_s": node.span.duration,
                "exclusive_s": exclusive.get(node.name, 0.0),
            }
        )
        node = max(
            node.children,
            key=lambda n: (n.span.t1, n.span.t0),
            default=None,
        )
    return path


def _rank_threshold(values: List[float], pct: float) -> float:
    """The repo's rank-based percentile: sorted, ``ceil(p*n/100) - 1``."""
    ordered = sorted(values)
    rank = -(-int(pct * len(ordered)) // 100) - 1
    return ordered[min(max(rank, 0), len(ordered) - 1)]


def attribute_p99(
    trace: Union[Tracer, Iterable[Span]],
    pct: float = 99.0,
) -> Dict[str, object]:
    """Decompose the tail cohort's latency into per-stage exclusive time.

    Builds the request trees, takes the cohort of requests whose
    end-to-end latency is >= the rank-based ``pct`` percentile, and sums
    each request's exact exclusive-time decomposition.  The returned
    ``stages`` mapping (name -> seconds, descending) sums to
    ``cohort_latency_s`` within float epsilon, and ``dominant`` names
    the stage that ate the tail.
    """
    trees = build_request_trees(trace)
    if not trees:
        return {
            "percentile": pct,
            "requests": 0,
            "cohort": 0,
            "threshold_s": 0.0,
            "cohort_latency_s": 0.0,
            "stages": {},
            "dominant": None,
        }
    latencies = [t.span.duration for t in trees]
    threshold = _rank_threshold(latencies, pct)
    cohort = [t for t in trees if t.span.duration >= threshold]
    stages: Dict[str, float] = {}
    cohort_latency = 0.0
    for tree in cohort:
        cohort_latency += tree.span.duration
        for name, seconds in exclusive_times(tree).items():
            stages[name] = stages.get(name, 0.0) + seconds
    ordered = dict(
        sorted(stages.items(), key=lambda kv: (-kv[1], kv[0]))
    )
    return {
        "percentile": pct,
        "requests": len(trees),
        "cohort": len(cohort),
        "threshold_s": threshold,
        "cohort_latency_s": cohort_latency,
        "stages": ordered,
        "dominant": next(iter(ordered), None),
    }
