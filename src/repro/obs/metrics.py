"""Named counters/gauges/histograms and a sim-time periodic sampler.

The :class:`MetricsRegistry` is the aggregate side of ``repro.obs``:
where the tracer records *individual* causally-linked intervals, the
registry holds *named* running values — counters (monotonic within a
reset window), gauges (last-write-wins), and histograms (full sample
lists with the repo's rank-based percentile rule).

The :class:`PeriodicSampler` turns live gauges into *time series*: every
``period_s`` simulated seconds it calls a probe callable, which returns a
``{name: value}`` mapping, and appends ``(t, mapping)`` to
``sampler.samples``.  Unlike the tracer, the sampler DOES schedule
simulator events (one per tick), so it is strictly opt-in: nothing
creates or starts one implicitly, goldens never run with one active, and
``stop()`` cancels the pending tick so ``run_until``-style settle loops
cannot be wedged by an immortal heartbeat.  The probe must be read-only —
it observes queue depths / inflight / hit rates, never mutates them.

:func:`serving_probe` builds the standard probe for an
:class:`~repro.serving.server.InferenceServer` (queue depth, inflight,
cache hit rate, GC pressure, per-lane goodput); any zero-argument
callable returning a mapping works.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PeriodicSampler",
    "serving_probe",
]


class Counter:
    """A monotonically-increasing count (within a reset window)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment")
        self.value += amount

    def reset_stats(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A last-write-wins instantaneous value with a peak memory."""

    __slots__ = ("name", "value", "peak")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.peak = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def reset_stats(self) -> None:
        self.value = 0.0
        self.peak = 0.0

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value}, peak={self.peak})"


class Histogram:
    """A full sample list with rank-based percentiles (the repo's rule:
    sorted values, index ``ceil(p/100 * n) - 1``)."""

    __slots__ = ("name", "values")

    def __init__(self, name: str):
        self.name = name
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    def percentile(self, p: float) -> float:
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = max(0, -(-int(p * len(ordered)) // 100) - 1)
        return ordered[min(rank, len(ordered) - 1)]

    def reset_stats(self) -> None:
        self.values.clear()

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={len(self.values)})"


class MetricsRegistry:
    """Named metrics, created on first use and listed deterministically."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def as_dict(self) -> Dict[str, float]:
        """Scalar snapshot: counters/gauges by value, histograms by count
        plus mean/p50/p99 derived keys."""
        out: Dict[str, float] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[f"{name}.count"] = float(metric.count)
                out[f"{name}.mean"] = metric.mean
                out[f"{name}.p50"] = metric.percentile(50)
                out[f"{name}.p99"] = metric.percentile(99)
            else:
                out[name] = metric.value
        return out

    def reset(self) -> None:
        for metric in self._metrics.values():
            metric.reset_stats()

    reset_stats = reset

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __repr__(self) -> str:
        return f"MetricsRegistry({self.names()})"


class PeriodicSampler:
    """Snapshot a probe mapping into a time series every ``period_s``.

    Explicit lifecycle: :meth:`start` schedules the first tick,
    :meth:`stop` cancels the pending one.  Each sample is
    ``(t, dict(probe()))``.  ``max_samples`` bounds memory (and run
    length) for open-ended scenarios; the sampler stops itself when the
    bound is reached.
    """

    def __init__(
        self,
        sim,
        probe: Callable[[], Mapping[str, float]],
        period_s: float,
        max_samples: Optional[int] = None,
    ):
        if period_s <= 0:
            raise ValueError("sampler period must be positive")
        if max_samples is not None and max_samples < 1:
            raise ValueError("max_samples must be None or >= 1")
        self.sim = sim
        self.probe = probe
        self.period_s = period_s
        self.max_samples = max_samples
        self.samples: List[Tuple[float, Dict[str, float]]] = []
        self._handle = None

    @property
    def running(self) -> bool:
        return self._handle is not None

    def start(self) -> "PeriodicSampler":
        if self._handle is None:
            self._handle = self.sim.schedule(self.period_s, self._tick)
        return self

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _tick(self) -> None:
        self._handle = None
        self.samples.append((self.sim.now, dict(self.probe())))
        if self.max_samples is not None and len(self.samples) >= self.max_samples:
            return
        self._handle = self.sim.schedule(self.period_s, self._tick)

    def series(self, name: str) -> List[Tuple[float, float]]:
        """The ``(t, value)`` time series of one probed key."""
        return [(t, row[name]) for t, row in self.samples if name in row]

    def reset_stats(self) -> None:
        self.samples.clear()

    def __repr__(self) -> str:
        return (
            f"PeriodicSampler(period={self.period_s}, "
            f"samples={len(self.samples)}, running={self.running})"
        )


def serving_probe(server) -> Callable[[], Dict[str, float]]:
    """The standard read-only probe for an ``InferenceServer``: queue
    depth, inflight, cumulative cache hit rate, GC pressure and per-lane
    goodput — the live shape of a diurnal/burst scenario."""

    def probe() -> Dict[str, float]:
        stats = server.stats
        out: Dict[str, float] = {
            "queue_depth": float(server.queue.queued),
            "inflight": float(stats.inflight),
            "submitted": float(stats.submitted),
            "completed": float(stats.completed),
            "dropped": float(stats.dropped),
            "rejected": float(stats.rejected),
            "cache_hit_rate": stats.cache_hit_rate(),
        }
        device = getattr(server.system, "device", None)
        ftl = getattr(device, "ftl", None)
        if ftl is not None:
            out["gc_runs"] = float(ftl.gc.runs)
            out["gc_pages_moved"] = float(ftl.gc.pages_moved)
            out["ftl_page_reads"] = float(ftl.host_page_reads)
            out["ftl_page_writes"] = float(ftl.host_page_writes)
        for lane, goodput in getattr(stats, "goodput_by_model", {}).items():
            out[f"goodput[{lane}]"] = float(goodput)
        return out

    return probe
