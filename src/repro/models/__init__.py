"""Recommendation model zoo and execution harness."""

from .base import Batch, IndexSampler, RecModel, SparseFeature, uniform_sampler
from .dien import DienConfig, DienModel
from .din import DinConfig, DinModel
from .dlrm import DlrmConfig, DlrmModel
from .layers import AttentionUnit, GruLayer, Mlp, relu, sigmoid
from .ncf import NcfConfig, NcfModel
from .runner import (
    BackendKind,
    ModelRunner,
    ModelRunResult,
    RunnerConfig,
    required_capacity_pages,
)
from .widedeep import MultiTaskWideDeepModel, WideDeepConfig, WideDeepModel
from .zoo import (
    EMBEDDING_DOMINATED,
    MLP_DOMINATED,
    MODEL_NAMES,
    TableOneRow,
    build_model,
    table_one,
)

__all__ = [
    "Batch",
    "IndexSampler",
    "RecModel",
    "SparseFeature",
    "uniform_sampler",
    "DienConfig",
    "DienModel",
    "DinConfig",
    "DinModel",
    "DlrmConfig",
    "DlrmModel",
    "AttentionUnit",
    "GruLayer",
    "Mlp",
    "relu",
    "sigmoid",
    "NcfConfig",
    "NcfModel",
    "BackendKind",
    "ModelRunner",
    "ModelRunResult",
    "RunnerConfig",
    "required_capacity_pages",
    "MultiTaskWideDeepModel",
    "WideDeepConfig",
    "WideDeepModel",
    "EMBEDDING_DOMINATED",
    "MLP_DOMINATED",
    "MODEL_NAMES",
    "TableOneRow",
    "build_model",
    "table_one",
]
