"""Wide & Deep and Multi-Task Wide & Deep (MLP-dominated class)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..embedding.spec import Layout, TableSpec
from ..host.cpu import HostCpu
from .base import RecModel, SparseFeature
from .layers import Mlp, sigmoid

__all__ = ["WideDeepConfig", "WideDeepModel", "MultiTaskWideDeepModel"]


@dataclass(frozen=True)
class WideDeepConfig:
    name: str
    dense_in: int
    deep_mlp: Tuple[int, ...]         # hidden dims of the deep tower
    num_tables: int
    table_rows: int
    dim: int
    lookups: int = 1
    num_tasks: int = 1                # >1 -> multi-task towers (MTWND)
    tower_mlp: Tuple[int, ...] = (256,)
    layout: Layout = Layout.PACKED

    def features(self) -> List[SparseFeature]:
        return [
            SparseFeature(
                spec=TableSpec(
                    name=f"{self.name}_emb{i}",
                    rows=self.table_rows,
                    dim=self.dim,
                    layout=self.layout,
                ),
                lookups=self.lookups,
            )
            for i in range(self.num_tables)
        ]


class WideDeepModel(RecModel):
    """Wide linear part over dense features + deep MLP over dense||embeddings."""

    def __init__(self, config: WideDeepConfig, seed: int = 0):
        super().__init__(config.name, config.dense_in, config.features(), seed)
        self.config = config
        rng = np.random.default_rng(seed)
        deep_in = config.dense_in + config.num_tables * config.dim
        self.deep = Mlp([deep_in, *config.deep_mlp, 1], rng)
        self.wide = Mlp([config.dense_in, 1], rng)

    def _deep_input(self, dense: np.ndarray, emb_values: Dict[str, np.ndarray]) -> np.ndarray:
        return np.concatenate(
            [dense] + [emb_values[f.name] for f in self.features], axis=1
        )

    def forward(self, dense: np.ndarray, emb_values: Dict[str, np.ndarray]) -> np.ndarray:
        deep = self.deep.forward(self._deep_input(dense, emb_values))
        wide = self.wide.forward(dense)
        return sigmoid(deep + wide).reshape(dense.shape[0])

    def dense_time(self, batch_size: int, cpu: HostCpu) -> float:
        return self.deep.time(batch_size, cpu) + self.wide.time(batch_size, cpu)


class MultiTaskWideDeepModel(WideDeepModel):
    """Shared deep bottom + per-task towers (the MTWND benchmark)."""

    def __init__(self, config: WideDeepConfig, seed: int = 0):
        if config.num_tasks < 2:
            raise ValueError("MTWND needs num_tasks >= 2")
        super().__init__(config, seed)
        rng = np.random.default_rng(seed + 17)
        deep_in = config.dense_in + config.num_tables * config.dim
        shared_out = config.deep_mlp[-1]
        self.shared = Mlp([deep_in, *config.deep_mlp], rng)
        self.towers = [
            Mlp([shared_out, *config.tower_mlp, 1], rng)
            for _ in range(config.num_tasks)
        ]

    def forward(self, dense: np.ndarray, emb_values: Dict[str, np.ndarray]) -> np.ndarray:
        shared = self.shared.forward(self._deep_input(dense, emb_values))
        task_scores = [tower.forward(shared) for tower in self.towers]
        wide = self.wide.forward(dense)
        combined = np.mean(np.stack(task_scores, axis=0), axis=0) + wide
        return sigmoid(combined).reshape(dense.shape[0])

    def dense_time(self, batch_size: int, cpu: HostCpu) -> float:
        total = self.shared.time(batch_size, cpu) + self.wide.time(batch_size, cpu)
        for tower in self.towers:
            total += tower.time(batch_size, cpu)
        return total
