"""Model execution: wires a model's tables to storage backends and runs
batches through the serial or pipelined inference loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..embedding.backends import DramSlsBackend, NdpSlsBackend, SsdSlsBackend
from ..embedding.caches import SetAssociativeLru, StaticPartitionCache
from ..embedding.pipeline import InferencePipeline, PipelineResult
from ..embedding.stage import EmbeddingStage, EmbStageResult
from ..embedding.table import EmbeddingTable
from ..host.system import System, build_system
from .base import Batch, RecModel

__all__ = [
    "BackendKind",
    "RunnerConfig",
    "ModelRunResult",
    "ModelRunner",
    "build_backends",
]


class BackendKind(str, Enum):
    DRAM = "dram"
    SSD = "ssd"
    NDP = "ndp"


@dataclass(frozen=True)
class RunnerConfig:
    kind: BackendKind
    host_cache_entries: int = 0     # baseline per-table LRU (16-way)
    partition_entries: int = 0      # NDP per-table static partition
    coalesce: bool = False
    compute_outputs: bool = True
    pipelined: bool = True
    warmup_batches: int = 1
    # Pre-fill the SSD page cache with small packed tables, modelling the
    # steady state the paper measures ("average latency results across many
    # batches") without simulating dozens of warm-up batches.
    prewarm_page_cache: bool = False


@dataclass
class ModelRunResult:
    pipeline: PipelineResult
    outputs: List[np.ndarray]
    emb_results: List[EmbStageResult]

    @property
    def steady_latency(self) -> float:
        return self.pipeline.steady_state_latency

    @property
    def mean_emb_latency(self) -> float:
        return self.pipeline.mean_emb_latency

    @property
    def mean_dense_latency(self) -> float:
        return self.pipeline.mean_dense_latency

    def stat_total(self, key: str) -> float:
        return sum(r.stat_total(key) for r in self.emb_results)


def required_capacity_pages(model: RecModel, page_bytes: int = 16 * 1024) -> int:
    total = sum(f.spec.table_pages(page_bytes) for f in model.features)
    # Alignment padding (one slot minimum per table) plus free-space slack.
    return int(total * 1.3) + 64 * 1024


def build_backends(
    model: RecModel,
    config: RunnerConfig,
    system: System,
    device=None,
    tables: Optional[Dict[str, "EmbeddingTable"]] = None,
    partition_profiles: Optional[Dict[str, List[np.ndarray]]] = None,
    features: Optional[Sequence] = None,
) -> tuple[Dict[str, object], Dict[str, SetAssociativeLru], Dict[str, StaticPartitionCache]]:
    """Construct one SLS backend per model table on ``system``.

    ``device`` selects which attached SSD serves the tables (default: the
    primary); ``tables`` substitutes replica or shard-local tables (the
    serving layer replicates/shards models across devices this way).
    ``features`` restricts construction to a subset of the model's sparse
    features — the shard-aware path builds only the table pieces a given
    device owns (keys of ``tables`` and the returned dicts stay the
    *feature* names even when a shard table's spec is suffixed).  Returns
    ``(backends, host_caches, partitions)``; the cache dicts are only
    populated for the backend kinds that use them.
    """
    device = device if device is not None else system.device
    tables = tables if tables is not None else model.tables
    features = list(features) if features is not None else model.features
    backends: Dict[str, object] = {}
    host_caches: Dict[str, SetAssociativeLru] = {}
    partitions: Dict[str, StaticPartitionCache] = {}
    for feature in features:
        table = tables[feature.name]
        if config.kind is BackendKind.DRAM:
            backends[feature.name] = DramSlsBackend(system, table)
            continue
        if not table.attached:
            table.attach(device)
        elif table.device is not device:
            # Silent fallback would route traffic to wherever the table
            # already lives (possibly another system), not to `device`.
            raise ValueError(
                f"table {feature.name!r} is already attached to a different "
                f"device; pass replica tables (same spec/data) to place a "
                f"model on multiple SSDs, and use one model instance per "
                f"system"
            )
        if config.kind is BackendKind.SSD:
            cache = None
            if config.host_cache_entries > 0:
                cache = SetAssociativeLru(config.host_cache_entries, ways=16)
                host_caches[feature.name] = cache
            backends[feature.name] = SsdSlsBackend(
                system, table, host_cache=cache, coalesce=config.coalesce
            )
        else:
            partition = None
            if config.partition_entries > 0:
                profile = (partition_profiles or {}).get(feature.name)
                if profile is None:
                    raise ValueError(
                        f"partition requested but no profile for {feature.name}"
                    )
                partition = StaticPartitionCache.from_profile(
                    table, profile, config.partition_entries
                )
                partitions[feature.name] = partition
            backends[feature.name] = NdpSlsBackend(system, table, partition=partition)
    return backends, host_caches, partitions


class ModelRunner:
    def __init__(
        self,
        model: RecModel,
        config: RunnerConfig,
        system: Optional[System] = None,
        partition_profiles: Optional[Dict[str, List[np.ndarray]]] = None,
        page_cache_pages: int = 16 * 1024,
        ndp_engine_config=None,
    ):
        self.model = model
        self.config = config
        if system is None:
            system = build_system(
                min_capacity_pages=required_capacity_pages(model),
                page_cache_pages=page_cache_pages,
                ndp=ndp_engine_config,
            )
        self.system = system
        backends, self.host_caches, self.partitions = build_backends(
            model, config, system, partition_profiles=partition_profiles
        )
        self.stage = EmbeddingStage(backends)
        if config.prewarm_page_cache and config.kind is not BackendKind.DRAM:
            self._prewarm_page_cache()

    def _prewarm_page_cache(self) -> None:
        from ..embedding.spec import Layout
        from ..embedding.table import TablePageContent

        cache = self.system.device.ftl.page_cache
        lbas_per_page = self.system.device.ftl.lbas_per_page
        for feature in self.model.features:
            table = self.model.tables[feature.name]
            if table.spec.layout is not Layout.PACKED or not table.attached:
                continue
            n_pages = table.spec.table_pages(table.page_bytes)
            if n_pages > cache.capacity - cache.size:
                continue
            base_lpn = table.base_lba // lbas_per_page
            for page_index in range(n_pages):
                cache.insert(base_lpn + page_index, TablePageContent(table, page_index))
        cache.reset_stats()

    # ------------------------------------------------------------------
    def run_batches(self, batches: Sequence[Batch]) -> ModelRunResult:
        outputs: List[Optional[np.ndarray]] = [None] * len(batches)
        cpu = self.system.host_cpu

        def dense_time_fn(i: int, emb_res: EmbStageResult) -> float:
            if self.config.compute_outputs:
                # Models reshape sequence features themselves via feature_values.
                outputs[i] = self.model.forward(batches[i].dense, emb_res.values)
            return self.model.dense_time(batches[i].batch_size, cpu)

        pipeline = InferencePipeline(
            self.stage, dense_time_fn, pipelined=self.config.pipelined
        )
        result = pipeline.run(
            [b.bags for b in batches],
            warmup=self.config.warmup_batches,
            keep_results=True,
        )
        emb_results = [r.emb_result for r in result.records if r.emb_result]
        return ModelRunResult(
            pipeline=result,
            outputs=[o for o in outputs if o is not None],
            emb_results=emb_results,
        )

    # ------------------------------------------------------------------
    def host_cache_hit_rate(self) -> float:
        caches = list(self.host_caches.values())
        hits = sum(c.hits for c in caches)
        total = sum(c.hits + c.misses for c in caches)
        return hits / total if total else 0.0

    def partition_hit_rate(self) -> float:
        parts = list(self.partitions.values())
        hits = sum(p.hits for p in parts)
        total = sum(p.hits + p.misses for p in parts)
        return hits / total if total else 0.0

    def ssd_emb_cache_hit_rate(self) -> float:
        cache = self.system.device.ndp.emb_cache
        total = cache.hits + cache.misses
        return cache.hits / total if total else 0.0
