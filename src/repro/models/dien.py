"""Deep Interest Evolution Network (GRU-based interest extraction)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..embedding.spec import Layout, TableSpec
from ..host.cpu import HostCpu
from .base import RecModel, SparseFeature
from .layers import AttentionUnit, GruLayer, Mlp, sigmoid

__all__ = ["DienConfig", "DienModel"]


@dataclass(frozen=True)
class DienConfig:
    name: str
    item_rows: int
    dim: int
    history: int
    gru_hidden: int
    attention_hidden: int
    top_mlp: Tuple[int, ...]
    dense_in: int = 16
    layout: Layout = Layout.PACKED

    def features(self) -> List[SparseFeature]:
        def table(suffix: str, lookups: int, sequence: bool) -> SparseFeature:
            return SparseFeature(
                spec=TableSpec(
                    name=f"{self.name}_{suffix}",
                    rows=self.item_rows,
                    dim=self.dim,
                    layout=self.layout,
                ),
                lookups=lookups,
                sequence=sequence,
            )

        return [
            table("hist", self.history, sequence=True),
            table("cand", 1, sequence=False),
        ]


class DienModel(RecModel):
    """Interest extraction GRU + attention-weighted evolution + top MLP.

    (The AUGRU evolution layer is approximated by attention-weighting the
    extracted interest states — the compute profile, one GRU pass plus an
    attention unit plus the top MLP, matches the benchmark's.)
    """

    def __init__(self, config: DienConfig, seed: int = 0):
        super().__init__(config.name, config.dense_in, config.features(), seed)
        self.config = config
        rng = np.random.default_rng(seed)
        self.gru = GruLayer(config.dim, config.gru_hidden, rng)
        self.evolution = GruLayer(config.gru_hidden, config.gru_hidden, rng)
        self.attention = AttentionUnit(config.gru_hidden, config.attention_hidden, rng)
        self.project = Mlp([config.dim, config.gru_hidden], rng)
        top_in = config.gru_hidden + config.dim + config.dense_in
        self.top = Mlp([top_in, *config.top_mlp, 1], rng)

    def forward(self, dense: np.ndarray, emb_values: Dict[str, np.ndarray]) -> np.ndarray:
        batch = dense.shape[0]
        hist_feature = self.features[0]
        history = self.feature_values(hist_feature, emb_values, batch)
        candidate = emb_values[f"{self.config.name}_cand"]
        interest = self.gru.forward(history)
        evolved = self.evolution.forward(interest)
        cand_h = self.project.forward(candidate)
        final_interest = self.attention.forward(evolved, cand_h)
        top_in = np.concatenate([final_interest, candidate, dense], axis=1)
        return sigmoid(self.top.forward(top_in)).reshape(batch)

    def dense_time(self, batch_size: int, cpu: HostCpu) -> float:
        cfg = self.config
        return (
            self.gru.time(batch_size, cfg.history, cpu)
            + self.evolution.time(batch_size, cfg.history, cpu)
            + self.attention.time(batch_size, cfg.history, cpu)
            + self.project.time(batch_size, cpu)
            + self.top.time(batch_size, cpu)
        )
