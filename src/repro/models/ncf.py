"""Neural Collaborative Filtering (MLP-dominated class).

GMF path (elementwise product of user/item factors) plus an MLP path over
concatenated user/item embeddings, fused by a final linear layer — the
NeuMF architecture of He et al.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..embedding.spec import Layout, TableSpec
from ..host.cpu import HostCpu
from .base import RecModel, SparseFeature
from .layers import Mlp, sigmoid

__all__ = ["NcfConfig", "NcfModel"]


@dataclass(frozen=True)
class NcfConfig:
    name: str
    user_rows: int
    item_rows: int
    dim: int
    mlp_dims: Tuple[int, ...]
    dense_in: int = 16            # context features
    layout: Layout = Layout.PACKED

    def features(self) -> List[SparseFeature]:
        def table(suffix: str, rows: int) -> SparseFeature:
            return SparseFeature(
                spec=TableSpec(
                    name=f"{self.name}_{suffix}",
                    rows=rows,
                    dim=self.dim,
                    layout=self.layout,
                ),
                lookups=1,
            )

        return [
            table("user_mf", self.user_rows),
            table("item_mf", self.item_rows),
            table("user_mlp", self.user_rows),
            table("item_mlp", self.item_rows),
        ]


class NcfModel(RecModel):
    def __init__(self, config: NcfConfig, seed: int = 0):
        super().__init__(config.name, config.dense_in, config.features(), seed)
        self.config = config
        rng = np.random.default_rng(seed)
        mlp_in = 2 * config.dim + config.dense_in
        self.mlp = Mlp([mlp_in, *config.mlp_dims], rng)
        self.final = Mlp([config.dim + config.mlp_dims[-1], 1], rng)

    def forward(self, dense: np.ndarray, emb_values: Dict[str, np.ndarray]) -> np.ndarray:
        name = self.config.name
        gmf = emb_values[f"{name}_user_mf"] * emb_values[f"{name}_item_mf"]
        mlp_in = np.concatenate(
            [emb_values[f"{name}_user_mlp"], emb_values[f"{name}_item_mlp"], dense],
            axis=1,
        )
        mlp_out = self.mlp.forward(mlp_in)
        score = self.final.forward(np.concatenate([gmf, mlp_out], axis=1))
        return sigmoid(score).reshape(dense.shape[0])

    def dense_time(self, batch_size: int, cpu: HostCpu) -> float:
        gmf = cpu.elementwise_time(batch_size * self.config.dim * 4)
        return (
            gmf
            + self.mlp.time(batch_size, cpu)
            + self.final.time(batch_size, cpu)
        )
