"""Numpy neural-network layers with analytic host-CPU costs.

Numerics are real (seeded weights, actual matmuls) so model outputs are
deterministic and testable; latency comes from the host cost model, which
is what the paper's end-to-end latency decomposes into.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..host.cpu import HostCpu

__all__ = ["Mlp", "GruLayer", "AttentionUnit", "sigmoid", "relu"]


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


def _init(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    scale = 1.0 / np.sqrt(fan_in)
    return rng.uniform(-scale, scale, size=(fan_in, fan_out)).astype(np.float32)


class Mlp:
    """Fully-connected stack with ReLU between layers.

    ``dims = [in, h1, ..., out]``; the final layer is linear (callers apply
    sigmoid where the model requires it).
    """

    def __init__(self, dims: Sequence[int], rng: np.random.Generator):
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        self.dims = list(dims)
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for d_in, d_out in zip(dims, dims[1:]):
            self.weights.append(_init(rng, d_in, d_out))
            self.biases.append(np.zeros(d_out, dtype=np.float32))

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.asarray(x, dtype=np.float32)
        last = len(self.weights) - 1
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            out = out @ w + b
            if i != last:
                out = relu(out)
        return out

    def time(self, batch: int, cpu: HostCpu) -> float:
        return cpu.mlp_time(batch, self.dims)


class GruLayer:
    """Single-layer GRU over a [B, L, input] sequence (returns all states)."""

    def __init__(self, input_dim: int, hidden: int, rng: np.random.Generator):
        self.input_dim = input_dim
        self.hidden = hidden
        self.w_x = _init(rng, input_dim, 3 * hidden)
        self.w_h = _init(rng, hidden, 3 * hidden)
        self.bias = np.zeros(3 * hidden, dtype=np.float32)

    def forward(self, seq: np.ndarray) -> np.ndarray:
        batch, length, _d = seq.shape
        h = np.zeros((batch, self.hidden), dtype=np.float32)
        states = np.zeros((batch, length, self.hidden), dtype=np.float32)
        hid = self.hidden
        for t in range(length):
            gates_x = seq[:, t, :] @ self.w_x + self.bias
            gates_h = h @ self.w_h
            r = sigmoid(gates_x[:, :hid] + gates_h[:, :hid])
            z = sigmoid(gates_x[:, hid : 2 * hid] + gates_h[:, hid : 2 * hid])
            n = np.tanh(gates_x[:, 2 * hid :] + r * gates_h[:, 2 * hid :])
            h = (1.0 - z) * n + z * h
            states[:, t, :] = h
        return states

    def time(self, batch: int, length: int, cpu: HostCpu) -> float:
        return cpu.gru_time(batch, length, self.hidden, self.input_dim)


class AttentionUnit:
    """DIN-style local activation unit.

    Scores each history position against the candidate via an MLP over
    ``[h, c, h - c, h * c]`` and returns the weighted sum of the history.
    """

    def __init__(self, dim: int, hidden: int, rng: np.random.Generator):
        self.dim = dim
        self.hidden = hidden
        self.mlp = Mlp([4 * dim, hidden, 1], rng)

    def forward(self, history: np.ndarray, candidate: np.ndarray) -> np.ndarray:
        batch, length, dim = history.shape
        cand = np.broadcast_to(candidate[:, None, :], history.shape)
        feats = np.concatenate(
            [history, cand, history - cand, history * cand], axis=2
        ).reshape(batch * length, 4 * dim)
        scores = sigmoid(self.mlp.forward(feats)).reshape(batch, length, 1)
        return (scores * history).sum(axis=1, dtype=np.float32)

    def time(self, batch: int, length: int, cpu: HostCpu) -> float:
        return self.mlp.time(batch * length, cpu) + cpu.elementwise_time(
            batch * length * self.dim * 4 * 4
        )
