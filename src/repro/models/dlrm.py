"""DLRM-style models (the embedding-dominated RMC1/RMC2/RMC3 class).

Bottom MLP projects dense features to the embedding dimension, a dot
interaction combines it with the pooled embedding vectors, and a top MLP
produces the click-through score — the architecture of Facebook's DLRM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..embedding.spec import Layout, TableSpec
from ..host.cpu import HostCpu
from .base import RecModel, SparseFeature
from .layers import Mlp, sigmoid

__all__ = ["DlrmConfig", "DlrmModel"]


@dataclass(frozen=True)
class DlrmConfig:
    name: str
    dense_in: int
    bottom_mlp: Tuple[int, ...]      # hidden dims; output dim is appended
    top_mlp: Tuple[int, ...]         # hidden dims; input/output appended
    num_tables: int
    table_rows: int
    dim: int
    lookups: int
    layout: Layout = Layout.ONE_PER_PAGE

    def features(self) -> List[SparseFeature]:
        return [
            SparseFeature(
                spec=TableSpec(
                    name=f"{self.name}_emb{i}",
                    rows=self.table_rows,
                    dim=self.dim,
                    layout=self.layout,
                ),
                lookups=self.lookups,
            )
            for i in range(self.num_tables)
        ]


class DlrmModel(RecModel):
    def __init__(self, config: DlrmConfig, seed: int = 0):
        super().__init__(config.name, config.dense_in, config.features(), seed)
        self.config = config
        rng = np.random.default_rng(seed)
        self.bottom = Mlp(
            [config.dense_in, *config.bottom_mlp, config.dim], rng
        )
        n_vectors = config.num_tables + 1  # pooled tables + bottom output
        self._n_interactions = n_vectors * (n_vectors - 1) // 2
        top_in = config.dim + self._n_interactions
        self.top = Mlp([top_in, *config.top_mlp, 1], rng)

    # ------------------------------------------------------------------
    def forward(self, dense: np.ndarray, emb_values: Dict[str, np.ndarray]) -> np.ndarray:
        batch = dense.shape[0]
        z = self.bottom.forward(dense)
        vectors = [z] + [emb_values[f.name] for f in self.features]
        stacked = np.stack(vectors, axis=1)  # [B, T+1, d]
        gram = stacked @ stacked.transpose(0, 2, 1)  # [B, T+1, T+1]
        iu, ju = np.triu_indices(stacked.shape[1], k=1)
        interactions = gram[:, iu, ju]  # [B, C]
        top_in = np.concatenate([z, interactions], axis=1)
        return sigmoid(self.top.forward(top_in)).reshape(batch)

    def dense_time(self, batch_size: int, cpu: HostCpu) -> float:
        n_vectors = self.config.num_tables + 1
        interaction = cpu.gemm_time(
            batch_size * n_vectors, n_vectors, self.config.dim
        )
        return (
            self.bottom.time(batch_size, cpu)
            + interaction
            + self.top.time(batch_size, cpu)
        )
