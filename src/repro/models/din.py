"""Deep Interest Network (attention over user behaviour history)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..embedding.spec import Layout, TableSpec
from ..host.cpu import HostCpu
from .base import RecModel, SparseFeature
from .layers import AttentionUnit, Mlp, sigmoid

__all__ = ["DinConfig", "DinModel"]


@dataclass(frozen=True)
class DinConfig:
    name: str
    item_rows: int
    dim: int
    history: int
    attention_hidden: int
    top_mlp: Tuple[int, ...]
    dense_in: int = 16
    layout: Layout = Layout.PACKED

    def features(self) -> List[SparseFeature]:
        def table(suffix: str, lookups: int, sequence: bool) -> SparseFeature:
            return SparseFeature(
                spec=TableSpec(
                    name=f"{self.name}_{suffix}",
                    rows=self.item_rows,
                    dim=self.dim,
                    layout=self.layout,
                ),
                lookups=lookups,
                sequence=sequence,
            )

        return [
            table("hist", self.history, sequence=True),
            table("cand", 1, sequence=False),
        ]


class DinModel(RecModel):
    def __init__(self, config: DinConfig, seed: int = 0):
        super().__init__(config.name, config.dense_in, config.features(), seed)
        self.config = config
        rng = np.random.default_rng(seed)
        self.attention = AttentionUnit(config.dim, config.attention_hidden, rng)
        top_in = 2 * config.dim + config.dense_in
        self.top = Mlp([top_in, *config.top_mlp, 1], rng)

    def forward(self, dense: np.ndarray, emb_values: Dict[str, np.ndarray]) -> np.ndarray:
        batch = dense.shape[0]
        hist_feature = self.features[0]
        history = self.feature_values(hist_feature, emb_values, batch)
        candidate = emb_values[f"{self.config.name}_cand"]
        interest = self.attention.forward(history, candidate)
        top_in = np.concatenate([interest, candidate, dense], axis=1)
        return sigmoid(self.top.forward(top_in)).reshape(batch)

    def dense_time(self, batch_size: int, cpu: HostCpu) -> float:
        return (
            self.attention.time(batch_size, self.config.history, cpu)
            + self.top.time(batch_size, cpu)
        )
