"""Recommendation-model base: sparse features, batches, the model protocol."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..embedding.spec import TableSpec
from ..embedding.table import EmbeddingTable
from ..host.cpu import HostCpu

__all__ = ["SparseFeature", "Batch", "RecModel", "IndexSampler", "uniform_sampler"]

IndexSampler = Callable[[int], np.ndarray]  # n -> row ids


@dataclass(frozen=True)
class SparseFeature:
    """One categorical feature backed by one embedding table.

    ``lookups`` is the per-sample pooling factor ("indices per lookup" in
    the paper's Table 1).  ``sequence=True`` keeps each looked-up vector
    separate (bag size 1 per position) for attention/recurrent models.
    """

    spec: TableSpec
    lookups: int
    sequence: bool = False

    @property
    def name(self) -> str:
        return self.spec.name

    def results_per_sample(self) -> int:
        return self.lookups if self.sequence else 1


@dataclass
class Batch:
    dense: np.ndarray                       # [B, dense_in] float32
    bags: Dict[str, List[np.ndarray]]       # table name -> per-result bags
    batch_size: int
    # Originating user (None = anonymous).  Locality-aware routers
    # (repro.cluster) key placement on it so repeat users land on hosts
    # whose embedding caches already hold their rows.
    user_id: Optional[int] = None


def uniform_sampler(rows: int, rng: np.random.Generator) -> IndexSampler:
    return lambda n: rng.integers(0, rows, size=n, dtype=np.int64)


class RecModel(ABC):
    """A recommendation model: tables + dense tower(s) + cost model."""

    def __init__(self, name: str, dense_in: int, features: Sequence[SparseFeature], seed: int = 0):
        self.name = name
        self.dense_in = dense_in
        self.features = list(features)
        names = [f.name for f in self.features]
        if len(set(names)) != len(names):
            raise ValueError("sparse feature names must be unique")
        self.seed = seed
        self.tables: Dict[str, EmbeddingTable] = {
            f.name: EmbeddingTable(f.spec, seed=seed + i * 1009 + 1)
            for i, f in enumerate(self.features)
        }

    # ------------------------------------------------------------------
    # Inputs
    # ------------------------------------------------------------------
    def sample_batch(
        self,
        rng: np.random.Generator,
        batch_size: int,
        samplers: Optional[Dict[str, IndexSampler]] = None,
    ) -> Batch:
        """Draw a batch; ``samplers`` overrides per-feature index sources."""
        dense = rng.standard_normal((batch_size, self.dense_in)).astype(np.float32)
        bags: Dict[str, List[np.ndarray]] = {}
        for feature in self.features:
            sampler = (samplers or {}).get(feature.name) or uniform_sampler(
                feature.spec.rows, rng
            )
            rows = np.asarray(
                sampler(batch_size * feature.lookups), dtype=np.int64
            )
            if feature.sequence:
                bags[feature.name] = [rows[i : i + 1] for i in range(rows.size)]
            else:
                bags[feature.name] = [
                    rows[i * feature.lookups : (i + 1) * feature.lookups]
                    for i in range(batch_size)
                ]
        return Batch(dense=dense, bags=bags, batch_size=batch_size)

    # ------------------------------------------------------------------
    # Embedding-output reshaping
    # ------------------------------------------------------------------
    def feature_values(
        self, feature: SparseFeature, emb_values: Dict[str, np.ndarray], batch_size: int
    ) -> np.ndarray:
        """[B, dim] for pooled features, [B, L, dim] for sequences."""
        values = emb_values[feature.name]
        if feature.sequence:
            return values.reshape(batch_size, feature.lookups, feature.spec.dim)
        return values

    # ------------------------------------------------------------------
    @abstractmethod
    def forward(
        self, dense: np.ndarray, emb_values: Dict[str, np.ndarray]
    ) -> np.ndarray:
        """Numeric scores [B] from dense inputs + per-table SLS outputs."""

    @abstractmethod
    def dense_time(self, batch_size: int, cpu: HostCpu) -> float:
        """Analytic latency of all non-embedding operators for one batch."""

    # ------------------------------------------------------------------
    def lookups_per_sample(self) -> int:
        return sum(f.lookups for f in self.features)

    def table_count(self) -> int:
        return len(self.features)

    def reference_emb(self, batch: Batch) -> Dict[str, np.ndarray]:
        """In-DRAM reference SLS values for every feature (test hook)."""
        return {
            f.name: self.tables[f.name].ref_sls(batch.bags[f.name])
            for f in self.features
        }

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name}, tables={self.table_count()}, "
            f"lookups/sample={self.lookups_per_sample()})"
        )
