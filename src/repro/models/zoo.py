"""The eight industry-representative benchmark models (DeepRecInfra set).

Table 1 of the paper differentiates the embedding-dominated models:

    =========  ============  =======  ===========
    Benchmark  Feature size  Indices  Table count
    =========  ============  =======  ===========
    RM1        32            80       8
    RM2        64            120      32
    RM3        32            20       10
    =========  ============  =======  ===========

The MLP-dominated models (WND, MTWND, DIN, DIEN, NCF) use small packed
tables with few lookups and heavy dense towers.  Default table rows for
the RMC models are scaled to 128K (the paper notes absolute table size
does not affect the results — access patterns do); pass ``table_rows``
to restore the paper's 1M.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .base import RecModel
from .dien import DienConfig, DienModel
from .din import DinConfig, DinModel
from .dlrm import DlrmConfig, DlrmModel
from .ncf import NcfConfig, NcfModel
from .widedeep import MultiTaskWideDeepModel, WideDeepConfig, WideDeepModel

__all__ = [
    "MODEL_NAMES",
    "MLP_DOMINATED",
    "EMBEDDING_DOMINATED",
    "TableOneRow",
    "table_one",
    "build_model",
]

MLP_DOMINATED = ("wnd", "mtwnd", "din", "dien", "ncf")
EMBEDDING_DOMINATED = ("rm1", "rm2", "rm3")
MODEL_NAMES = MLP_DOMINATED + EMBEDDING_DOMINATED

DEFAULT_RMC_ROWS = 131_072


@dataclass(frozen=True)
class TableOneRow:
    benchmark: str
    feature_size: int
    indices: int
    table_count: int


def table_one() -> List[TableOneRow]:
    """The paper's Table 1 (differentiating benchmark parameters)."""
    return [
        TableOneRow("RM1", 32, 80, 8),
        TableOneRow("RM2", 64, 120, 32),
        TableOneRow("RM3", 32, 20, 10),
    ]


def _rmc_config(name: str, table_rows: int) -> DlrmConfig:
    if name == "rm1":
        return DlrmConfig(
            name="rm1", dense_in=64, bottom_mlp=(128, 64), top_mlp=(256, 128),
            num_tables=8, table_rows=table_rows, dim=32, lookups=80,
        )
    if name == "rm2":
        return DlrmConfig(
            name="rm2", dense_in=64, bottom_mlp=(256, 128), top_mlp=(512, 256),
            num_tables=32, table_rows=table_rows, dim=64, lookups=120,
        )
    if name == "rm3":
        return DlrmConfig(
            name="rm3", dense_in=128, bottom_mlp=(1024, 512, 256), top_mlp=(512, 256),
            num_tables=10, table_rows=table_rows, dim=32, lookups=20,
        )
    raise KeyError(name)


def build_model(
    name: str,
    seed: int = 0,
    table_rows: Optional[int] = None,
) -> RecModel:
    """Instantiate a benchmark model by name (see ``MODEL_NAMES``)."""
    name = name.lower()
    if name in EMBEDDING_DOMINATED:
        rows = table_rows or DEFAULT_RMC_ROWS
        return DlrmModel(_rmc_config(name, rows), seed=seed)
    if name == "wnd":
        return WideDeepModel(
            WideDeepConfig(
                name="wnd", dense_in=256, deep_mlp=(2048, 1024, 512),
                num_tables=4, table_rows=table_rows or 65_536, dim=32,
            ),
            seed=seed,
        )
    if name == "mtwnd":
        return MultiTaskWideDeepModel(
            WideDeepConfig(
                name="mtwnd", dense_in=256, deep_mlp=(2048, 1024),
                num_tables=4, table_rows=table_rows or 65_536, dim=32,
                num_tasks=3, tower_mlp=(512, 256),
            ),
            seed=seed,
        )
    if name == "ncf":
        return NcfModel(
            NcfConfig(
                name="ncf", user_rows=table_rows or 131_072, item_rows=16_384,
                dim=64, mlp_dims=(1024, 1024, 512),
            ),
            seed=seed,
        )
    if name == "din":
        return DinModel(
            DinConfig(
                name="din", item_rows=table_rows or 8_192, dim=32, history=8,
                attention_hidden=64, top_mlp=(512, 256),
            ),
            seed=seed,
        )
    if name == "dien":
        return DienModel(
            DienConfig(
                name="dien", item_rows=table_rows or 8_192, dim=32, history=8,
                gru_hidden=24, attention_hidden=64, top_mlp=(256, 128),
            ),
            seed=seed,
        )
    raise KeyError(f"unknown model {name!r}; choose from {MODEL_NAMES}")
